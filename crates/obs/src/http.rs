//! A minimal, dependency-free HTTP/1.1 request parser and response
//! writer for the telemetry serving edge ([`crate::serve`]).
//!
//! Same discipline as the in-tree JSON parser ([`crate::json`]): no
//! third-party crates, typed errors, and — because this code faces
//! arbitrary bytes from a socket — it must *never* panic (the E005
//! hot-path panic-freedom policy applied to the network edge). Every
//! failure mode is an [`HttpError`] variant; malformed input, oversized
//! heads, and truncated bodies all come back as clean errors.
//!
//! The parser is incremental: [`parse_request`] consumes a byte buffer
//! that may hold a partial request (returns `Ok(None)`, read more), a
//! complete one (returns the request and how many bytes it consumed),
//! or several pipelined requests (call it again on the remainder).

/// Maximum bytes of request head (request line + headers) accepted.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum number of header lines accepted.
pub const MAX_HEADERS: usize = 64;

/// Maximum request body bytes accepted.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Why a request failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Request line is not `METHOD TARGET HTTP/x.y`.
    BadRequestLine,
    /// Only HTTP/1.0 and HTTP/1.1 are spoken here.
    UnsupportedVersion(String),
    /// A header line has no `:` or a malformed name.
    BadHeader,
    /// The head (request line + headers) exceeds [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders,
    /// `Content-Length` is not a number.
    BadContentLength,
    /// Declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            HttpError::BadHeader => write!(f, "malformed header line"),
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            HttpError::BadContentLength => write!(f, "unparseable Content-Length"),
            HttpError::BodyTooLarge => write!(f, "body exceeds {MAX_BODY_BYTES} bytes"),
        }
    }
}

impl std::error::Error for HttpError {}

impl HttpError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::HeadTooLarge | HttpError::TooManyHeaders => 431,
            HttpError::BodyTooLarge => 413,
            _ => 400,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (as sent; never normalised).
    pub method: String,
    /// The request target (`/progress?pretty=1`).
    pub target: String,
    /// `1.0` or `1.1`.
    pub version: String,
    /// Header `(name, value)` pairs, in wire order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (ASCII case-insensitive lookup;
    /// stored names are already lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }

    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// True when the client asked to close (or, on 1.0, didn't ask to
    /// keep alive). `Connection` is a comma-separated list of
    /// case-insensitive tokens (RFC 9110 §7.6.1): `close` anywhere in
    /// the list wins, then `keep-alive`, then the version default.
    pub fn wants_close(&self) -> bool {
        if let Some(v) = self.header("connection") {
            let mut keep_alive = false;
            for token in v.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    return true;
                }
                keep_alive |= token.eq_ignore_ascii_case("keep-alive");
            }
            if keep_alive {
                return false;
            }
        }
        self.version == "1.0"
    }
}

/// Attempts to parse one request from the front of `buf`.
///
/// - `Ok(Some((request, consumed)))`: a complete request; `consumed`
///   bytes belong to it (pipelined requests follow at `buf[consumed..]`).
/// - `Ok(None)`: the buffer holds a valid *prefix*; read more bytes.
///   A connection dropped here (EOF with a nonempty buffer) is a
///   truncated request — the caller treats it as a clean close.
/// - `Err(e)`: the bytes can never become a valid request.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    // Locate the end of the head: CRLFCRLF (tolerating bare LFLF).
    let Some((head_end, sep_len)) = find_head_end(buf) else {
        // No terminator yet. Either genuinely partial, or the head has
        // already outgrown its budget and can never complete.
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(s) => s,
        Err(_) => return Err(HttpError::BadRequestLine),
    };
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequestLine),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }
    let version = match version {
        "HTTP/1.1" => "1.1",
        "HTTP/1.0" => "1.0",
        v => match v.strip_prefix("HTTP/") {
            Some(rest) => return Err(HttpError::UnsupportedVersion(rest.to_string())),
            None => return Err(HttpError::BadRequestLine),
        },
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooManyHeaders);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader);
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Err(HttpError::BadContentLength),
        },
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    let body_start = head_end + sep_len;
    let body_end = body_start + content_length;
    if buf.len() < body_end {
        return Ok(None); // body still in flight
    }
    Ok(Some((
        Request {
            method: method.to_string(),
            target: target.to_string(),
            version: version.to_string(),
            headers,
            body: buf[body_start..body_end].to_vec(),
        },
        body_end,
    )))
}

/// Byte offset where the head ends and the length of the blank-line
/// separator (4 for CRLFCRLF, 2 for LFLF).
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        if buf[i..].starts_with(b"\r\n\r\n") {
            return Some((i, 4));
        }
        if buf[i..].starts_with(b"\n\n") {
            return Some((i, 2));
        }
    }
    None
}

/// Serialises an HTTP/1.1 response with `Content-Length` framing.
pub fn response(status: u16, content_type: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: {}\r\n\
         \r\n\
         {body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(bytes: &[u8]) -> Request {
        match parse_request(bytes) {
            Ok(Some((r, consumed))) => {
                assert_eq!(consumed, bytes.len(), "whole buffer consumed");
                r
            }
            other => panic!("expected a complete request, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_simple_get() {
        let r = parse_one(b"GET /progress HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/progress");
        assert_eq!(r.version, "1.1");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"), "case-insensitive lookup");
        assert!(r.body.is_empty());
        assert!(!r.wants_close());
    }

    #[test]
    fn path_strips_query() {
        let r = parse_one(b"GET /progress?pretty=1 HTTP/1.1\r\n\r\n");
        assert_eq!(r.path(), "/progress");
        assert_eq!(r.target, "/progress?pretty=1");
    }

    #[test]
    fn connection_semantics() {
        let close = parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(close.wants_close());
        let old = parse_one(b"GET / HTTP/1.0\r\n\r\n");
        assert!(old.wants_close(), "1.0 defaults to close");
        let oldka = parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!oldka.wants_close());
    }

    #[test]
    fn header_names_and_tokens_are_case_insensitive() {
        // RFC 9110: field names and Connection tokens compare
        // case-insensitively, whatever the wire casing.
        let r = parse_one(b"GET / HTTP/1.1\r\nCoNnEcTiOn: CLOSE\r\n\r\n");
        assert_eq!(r.header("Connection"), Some("CLOSE"));
        assert!(r.wants_close());
        let r = parse_one(b"GET / HTTP/1.0\r\nCONNECTION: Keep-Alive\r\n\r\n");
        assert!(!r.wants_close());
        let r = parse_one(b"POST / HTTP/1.1\r\nCONTENT-LENGTH: 2\r\n\r\nok");
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn connection_token_lists_are_parsed() {
        // Connection carries a token *list*; close anywhere wins.
        let r = parse_one(b"GET / HTTP/1.1\r\nConnection: TE, Close\r\n\r\n");
        assert!(r.wants_close());
        let r = parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive, TE\r\n\r\n");
        assert!(!r.wants_close());
        // Unrelated tokens alone fall back to the version default.
        let r = parse_one(b"GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n");
        assert!(!r.wants_close());
        let r = parse_one(b"GET / HTTP/1.0\r\nConnection: upgrade\r\n\r\n");
        assert!(r.wants_close());
    }

    #[test]
    fn body_follows_content_length() {
        let r = parse_one(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert_eq!(r.body, b"hello");
    }

    // ---- robustness: the parser faces arbitrary socket bytes and
    // must return clean errors, never panic (E005 applied to the edge).

    #[test]
    fn malformed_request_lines_error_cleanly() {
        for bad in [
            &b""[..],                            // caught as partial, then:
            b"\r\n\r\n",                         // empty request line
            b"GET\r\n\r\n",                      // no target
            b"GET /x\r\n\r\n",                   // no version
            b"GET /x HTTP/1.1 extra\r\n\r\n",    // four words
            b"get /x HTTP/1.1\r\n\r\n",          // lowercase method
            b"GET /x FTP/1.1\r\n\r\n",           // not HTTP at all
            b"\x00\x01\x02 /x HTTP/1.1\r\n\r\n", // binary garbage
            b"\xff\xfe /x HTTP/1.1\r\n\r\n",     // invalid UTF-8
        ] {
            match parse_request(bad) {
                Ok(Some(_)) => panic!("accepted malformed request {bad:?}"),
                Ok(None) => assert!(
                    find_head_end(bad).is_none(),
                    "complete head parsed as partial: {bad:?}"
                ),
                Err(_) => {}
            }
        }
    }

    #[test]
    fn unsupported_version_is_reported() {
        let r = parse_request(b"GET /x HTTP/2.0\r\n\r\n");
        assert_eq!(r, Err(HttpError::UnsupportedVersion("2.0".to_string())));
        assert_eq!(
            HttpError::UnsupportedVersion("2.0".to_string()).status(),
            400
        );
    }

    #[test]
    fn malformed_headers_error_cleanly() {
        for bad in [
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: v\r\n\r\n",
        ] {
            assert_eq!(parse_request(bad), Err(HttpError::BadHeader), "{bad:?}");
        }
    }

    #[test]
    fn oversized_head_is_rejected_not_buffered_forever() {
        // A head that never terminates must fail once past the budget,
        // not ask the caller to keep reading without bound.
        let mut buf = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
        buf.resize(MAX_HEAD_BYTES + 1, b'a');
        assert_eq!(parse_request(&buf), Err(HttpError::HeadTooLarge));
        // And a terminated head that is simply too large also fails.
        let mut big = b"GET / HTTP/1.1\r\ny: ".to_vec();
        big.resize(MAX_HEAD_BYTES + 8, b'b');
        big.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_request(&big), Err(HttpError::HeadTooLarge));
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            buf.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        buf.extend_from_slice(b"\r\n");
        assert_eq!(parse_request(&buf), Err(HttpError::TooManyHeaders));
    }

    #[test]
    fn content_length_abuse_rejected() {
        assert_eq!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        assert_eq!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse_request(huge.as_bytes()), Err(HttpError::BodyTooLarge));
    }

    #[test]
    fn partial_reads_resume_cleanly() {
        // Feed the request a byte at a time: every prefix must be
        // Ok(None), the full buffer must parse, and nothing panics.
        let wire = b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
        for cut in 0..wire.len() {
            assert_eq!(
                parse_request(&wire[..cut]),
                Ok(None),
                "prefix of {cut} bytes should be partial"
            );
        }
        let (r, consumed) = parse_request(wire).expect("parses").expect("complete");
        assert_eq!(consumed, wire.len());
        assert_eq!(r.path(), "/metrics");
        assert!(r.wants_close());
    }

    #[test]
    fn connection_drop_mid_body_stays_partial() {
        // Head complete, Content-Length promises 10 bytes, only 4
        // arrived before the peer vanished. The parser reports a
        // partial — the caller sees EOF next and closes quietly.
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabcd";
        assert_eq!(parse_request(wire), Ok(None));
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let wire =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /progress HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (first, consumed) = parse_request(wire).expect("ok").expect("complete");
        assert_eq!(first.path(), "/healthz");
        assert!(!first.wants_close());
        let rest = &wire[consumed..];
        let (second, consumed2) = parse_request(rest).expect("ok").expect("complete");
        assert_eq!(second.path(), "/progress");
        assert!(second.wants_close());
        assert_eq!(consumed + consumed2, wire.len());
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // A deterministic xorshift fuzz pass: whatever lands in the
        // buffer, parse_request must return, not unwind.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let len = (next() % 300) as usize;
            let mut buf = Vec::with_capacity(len);
            for _ in 0..len {
                buf.push(next() as u8);
            }
            // Bias some trials toward almost-valid requests.
            if trial % 3 == 0 {
                let mut v = b"GET /x HTTP/1.1\r\n".to_vec();
                v.extend_from_slice(&buf);
                buf = v;
            }
            let _ = parse_request(&buf);
        }
    }

    #[test]
    fn lf_only_line_endings_are_tolerated() {
        let r = parse_one(b"GET /healthz HTTP/1.1\nHost: x\n\n");
        assert_eq!(r.path(), "/healthz");
        assert_eq!(r.header("host"), Some("x"));
    }

    #[test]
    fn response_is_framed() {
        let bytes = response(200, "text/plain", "hi", true);
        let text = String::from_utf8(bytes).expect("ascii response");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
        let closed = response(503, "application/json", "{}", false);
        assert!(String::from_utf8(closed)
            .expect("ascii")
            .contains("Connection: close"));
    }
}
