//! Live telemetry hub: lock-free progress aggregation for running
//! sweeps.
//!
//! The tracer and profiler answer questions *after* a run; the hub
//! answers them *during* one. Workers (sweep threads, long machine
//! runs) publish small fixed-size progress [`Beat`]s — instructions
//! retired, misses, migrations, `F`/`A_R`, worker state — into
//! per-worker single-producer/single-consumer rings. A single
//! aggregator (whoever calls [`Hub::snapshot`], serialised internally)
//! drains the rings and merges them into an epoch-stamped
//! [`HubSnapshot`] that the serving edge ([`crate::serve`]) renders as
//! `/progress` JSON and `/healthz` verdicts.
//!
//! **No mutex on the hot path.** A publish is a handful of relaxed
//! atomic stores into the worker's own ring slot followed by one
//! release store of the ring head; a full ring drops the beat (and
//! counts the drop) rather than blocking. Only the aggregation side —
//! never a worker — takes a lock.
//!
//! **Epoch'd snapshot merge.** Each merge drains every ring, folds the
//! newest beat per worker into the retained [`WorkerProgress`] row, and
//! bumps the snapshot epoch, so readers can tell "new data" from "same
//! data re-read".
//!
//! **Self-accounting.** The hub measures its own cost — beats
//! published, bytes moved, nanoseconds inside publish and merge — and
//! reports it as [`HubOverhead`]. A [`TelemetryBudget`] turns that into
//! a pass/fail verdict against a configured fraction of run time, so
//! "observability is cheap" stays a measured claim rather than an
//! assumption as instrumentation grows.
//!
//! **Zero cost when off.** Like [`crate::Tracer`] and
//! [`crate::Profiler`], the hub follows the `trace`-feature discipline:
//! without the feature [`Hub`] and [`HubWorker`] are zero-sized no-ops
//! and [`Hub::ACTIVE`] is `false`. Publish call sites outside this
//! crate must sit behind `if Hub::ACTIVE { … }` (lint rule E011), so
//! default builds carry no telemetry code at all.

use crate::json::{Json, ToJson};

/// `u64` words per encoded [`Beat`] in the ring.
pub const BEAT_WORDS: usize = 12;

/// Default ring capacity (beats buffered per worker between merges).
pub const DEFAULT_RING_CAPACITY: usize = 64;

/// Default expected beat interval for the stall watchdog, µs.
pub const DEFAULT_HEARTBEAT_US: u64 = 1_000_000;

/// Default missed-beat count before a worker is flagged stalled.
pub const DEFAULT_STALL_BEATS: u64 = 3;

/// What a worker is doing, as of its latest beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerState {
    /// No beat received yet, or between tasks.
    #[default]
    Idle,
    /// Executing a task.
    Running,
    /// Finished its share of the run.
    Done,
}

impl WorkerState {
    /// Stable string form (used by JSON and Prometheus labels).
    pub fn as_str(self) -> &'static str {
        match self {
            WorkerState::Idle => "idle",
            WorkerState::Running => "running",
            WorkerState::Done => "done",
        }
    }

    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    fn encode(self) -> u64 {
        match self {
            WorkerState::Idle => 0,
            WorkerState::Running => 1,
            WorkerState::Done => 2,
        }
    }

    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    fn decode(v: u64) -> WorkerState {
        match v {
            1 => WorkerState::Running,
            2 => WorkerState::Done,
            _ => WorkerState::Idle,
        }
    }
}

impl ToJson for WorkerState {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_string())
    }
}

/// One progress heartbeat. Counter fields are cumulative from the
/// worker's point of view (the merge keeps the newest beat, it does not
/// sum them); `seq` and `wall_us` are stamped by
/// [`HubWorker::publish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Beat {
    /// Worker state.
    pub state: WorkerState,
    /// Task index the worker is on (`u64::MAX` when idle).
    pub task: u64,
    /// Tasks completed so far.
    pub tasks_done: u64,
    /// Instructions retired so far (current task or run, publisher's
    /// choice — label it consistently).
    pub instructions: u64,
    /// L2 misses so far.
    pub l2_misses: u64,
    /// Migrations so far.
    pub migrations: u64,
    /// Transition-filter value `F` at beat time.
    pub f_value: i64,
    /// `A_R` register at beat time.
    pub a_r: i64,
    /// Update-bus bytes so far.
    pub bus_bytes: u64,
}

impl Beat {
    /// An idle beat.
    pub fn idle() -> Beat {
        Beat {
            task: u64::MAX,
            ..Beat::default()
        }
    }

    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    fn encode(&self, seq: u64, wall_us: u64) -> [u64; BEAT_WORDS] {
        [
            self.state.encode(),
            self.task,
            self.tasks_done,
            self.instructions,
            self.l2_misses,
            self.migrations,
            self.f_value as u64,
            self.a_r as u64,
            self.bus_bytes,
            seq,
            wall_us,
            0,
        ]
    }

    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    fn decode(words: &[u64; BEAT_WORDS]) -> (Beat, u64, u64) {
        (
            Beat {
                state: WorkerState::decode(words[0]),
                task: words[1],
                tasks_done: words[2],
                instructions: words[3],
                l2_misses: words[4],
                migrations: words[5],
                f_value: words[6] as i64,
                a_r: words[7] as i64,
                bus_bytes: words[8],
            },
            words[9],
            words[10],
        )
    }
}

/// Hub sizing and watchdog thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HubConfig {
    /// Worker slots (fixed at construction).
    pub workers: usize,
    /// Beats buffered per worker between merges. Must be ≥ 2.
    pub ring_capacity: usize,
    /// Expected beat interval for the stall watchdog, µs.
    pub heartbeat_us: u64,
    /// Beats a running worker may miss before `/healthz` flags it.
    pub stall_beats: u64,
}

impl HubConfig {
    /// The default configuration for `workers` worker slots.
    pub fn with_workers(workers: usize) -> HubConfig {
        HubConfig {
            workers,
            ring_capacity: DEFAULT_RING_CAPACITY,
            heartbeat_us: DEFAULT_HEARTBEAT_US,
            stall_beats: DEFAULT_STALL_BEATS,
        }
    }

    /// µs of silence after which a running worker counts as stalled.
    pub fn stall_after_us(&self) -> u64 {
        self.heartbeat_us.saturating_mul(self.stall_beats.max(1))
    }
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig::with_workers(0)
    }
}

crate::impl_to_json!(HubConfig {
    workers,
    ring_capacity,
    heartbeat_us,
    stall_beats
});

/// One worker's merged progress, as of the snapshot epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerProgress {
    /// Worker slot index.
    pub worker: usize,
    /// State from the newest beat.
    pub state: WorkerState,
    /// Beats merged so far.
    pub beats: u64,
    /// Beats dropped on a full ring so far.
    pub dropped: u64,
    /// Task index from the newest beat (`u64::MAX` when idle).
    pub task: u64,
    /// Tasks completed.
    pub tasks_done: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Migrations.
    pub migrations: u64,
    /// `F` at the newest beat.
    pub f_value: i64,
    /// `A_R` at the newest beat.
    pub a_r: i64,
    /// Update-bus bytes.
    pub bus_bytes: u64,
    /// Hub-clock stamp of the newest beat, µs.
    pub wall_us: u64,
    /// µs between the newest beat and the snapshot.
    pub age_us: u64,
}

crate::impl_to_json!(WorkerProgress {
    worker,
    state,
    beats,
    dropped,
    task,
    tasks_done,
    instructions,
    l2_misses,
    migrations,
    f_value,
    a_r,
    bus_bytes,
    wall_us,
    age_us
});

impl WorkerProgress {
    /// True when the worker claims to be running but has been silent
    /// past the watchdog threshold.
    pub fn stalled(&self, stall_after_us: u64) -> bool {
        self.state == WorkerState::Running && self.beats > 0 && self.age_us > stall_after_us
    }
}

/// What the hub's own instrumentation cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubOverhead {
    /// Beats accepted into rings.
    pub beats: u64,
    /// Beats dropped on full rings.
    pub dropped: u64,
    /// Payload bytes moved through rings (`beats × beat size`).
    pub bytes: u64,
    /// Nanoseconds inside [`HubWorker::publish`], summed over workers.
    pub publish_ns: u64,
    /// Snapshot merges performed.
    pub merges: u64,
    /// Nanoseconds inside the snapshot merge.
    pub merge_ns: u64,
}

crate::impl_to_json!(HubOverhead {
    beats,
    dropped,
    bytes,
    publish_ns,
    merges,
    merge_ns
});

impl HubOverhead {
    /// Total observability nanoseconds (publish + merge).
    pub fn total_ns(&self) -> u64 {
        self.publish_ns.saturating_add(self.merge_ns)
    }

    /// Observability time as a fraction of `run_ns` (0 when `run_ns`
    /// is 0).
    pub fn fraction_of(&self, run_ns: u64) -> f64 {
        if run_ns == 0 {
            0.0
        } else {
            self.total_ns() as f64 / run_ns as f64
        }
    }
}

/// A cap on how much of a run observability may consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryBudget {
    /// Maximum tolerated `overhead / run` time fraction.
    pub max_fraction: f64,
}

impl Default for TelemetryBudget {
    fn default() -> Self {
        // The acceptance bar: observability under 2 % of run time.
        TelemetryBudget { max_fraction: 0.02 }
    }
}

/// A budget check outcome (never panics; callers decide severity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetVerdict {
    /// Measured overhead fraction of the run.
    pub fraction: f64,
    /// The configured cap.
    pub max_fraction: f64,
    /// `fraction <= max_fraction`.
    pub within: bool,
}

crate::impl_to_json!(BudgetVerdict {
    fraction,
    max_fraction,
    within
});

impl TelemetryBudget {
    /// Checks `overhead` against a run of `run_ns` nanoseconds.
    pub fn verdict(&self, overhead: &HubOverhead, run_ns: u64) -> BudgetVerdict {
        let fraction = overhead.fraction_of(run_ns);
        BudgetVerdict {
            fraction,
            max_fraction: self.max_fraction,
            within: fraction <= self.max_fraction,
        }
    }
}

/// An epoch-stamped merged view of every worker.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HubSnapshot {
    /// Bumped on every merge that ran (even if no new beats arrived).
    pub epoch: u64,
    /// Hub-clock time of the merge, µs.
    pub taken_us: u64,
    /// Per-worker progress rows, one per slot.
    pub workers: Vec<WorkerProgress>,
    /// Hub self-accounting at merge time.
    pub overhead: HubOverhead,
}

impl HubSnapshot {
    /// Sum of `instructions` over workers.
    pub fn total_instructions(&self) -> u64 {
        self.workers.iter().map(|w| w.instructions).sum()
    }

    /// Sum of completed tasks over workers.
    pub fn total_tasks_done(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks_done).sum()
    }

    /// Workers flagged by the stall watchdog.
    pub fn stalled_workers(&self, stall_after_us: u64) -> Vec<usize> {
        self.workers
            .iter()
            .filter(|w| w.stalled(stall_after_us))
            .map(|w| w.worker)
            .collect()
    }

    /// True when every worker reported [`WorkerState::Done`].
    pub fn all_done(&self) -> bool {
        !self.workers.is_empty() && self.workers.iter().all(|w| w.state == WorkerState::Done)
    }
}

impl ToJson for HubSnapshot {
    fn to_json(&self) -> Json {
        Json::object()
            .field("epoch", self.epoch)
            .field("taken_us", self.taken_us)
            .field("total_instructions", self.total_instructions())
            .field("total_tasks_done", self.total_tasks_done())
            .field("workers", &self.workers)
            .field("overhead", self.overhead)
    }
}

/// `/healthz` verdict derived from a snapshot plus the watchdog config.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// No running worker has missed its beat budget.
    pub ok: bool,
    /// Worker slots configured.
    pub workers: usize,
    /// Stalled worker indices.
    pub stalled: Vec<usize>,
    /// Snapshot epoch the verdict was computed from.
    pub epoch: u64,
}

impl ToJson for HealthReport {
    fn to_json(&self) -> Json {
        Json::object()
            .field("status", if self.ok { "ok" } else { "stalled" }.to_string())
            .field("workers", self.workers)
            .field("stalled", &self.stalled)
            .field("epoch", self.epoch)
    }
}

#[cfg(feature = "trace")]
mod real {
    use super::*;
    use crate::model::sync::{Arc, AtomicBool, AtomicU64, Mutex, Ordering};
    use std::time::Instant;

    /// One worker's SPSC ring plus its producer-side counters.
    struct WorkerSlot {
        /// Next sequence number the producer will write (monotonic).
        head: AtomicU64,
        /// Next sequence number the consumer will read.
        tail: AtomicU64,
        /// Beats dropped on a full ring.
        dropped: AtomicU64,
        /// Beats accepted.
        published: AtomicU64,
        /// Producer nanoseconds inside `publish`.
        publish_ns: AtomicU64,
        /// Producer handle handed out already?
        claimed: AtomicBool,
        /// Fixed-size beat storage; slot `i` holds sequence numbers
        /// `≡ i (mod capacity)`.
        ring: Vec<[AtomicU64; BEAT_WORDS]>,
    }

    impl WorkerSlot {
        fn new(capacity: usize) -> WorkerSlot {
            WorkerSlot {
                head: AtomicU64::new(0),
                tail: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                published: AtomicU64::new(0),
                publish_ns: AtomicU64::new(0),
                claimed: AtomicBool::new(false),
                ring: (0..capacity)
                    .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                    .collect(),
            }
        }
    }

    /// Aggregator-side merge state, guarded by one (cold-path) mutex.
    struct AggState {
        workers: Vec<WorkerProgress>,
        epoch: u64,
        merges: u64,
        merge_ns: u64,
    }

    struct HubInner {
        config: HubConfig,
        started: Instant,
        slots: Vec<WorkerSlot>,
        agg: Mutex<AggState>,
    }

    /// The live telemetry hub (real variant, `trace` feature on).
    ///
    /// Cheap to clone — clones share the same rings and merge state.
    #[derive(Clone)]
    pub struct Hub {
        inner: Arc<HubInner>,
    }

    impl std::fmt::Debug for Hub {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Hub")
                .field("config", &self.inner.config)
                .finish()
        }
    }

    impl Hub {
        /// Compile-time flag: true in `trace` builds. Publish sites
        /// outside obs guard with this (lint rule E011).
        pub const ACTIVE: bool = true;

        /// A hub with `config.workers` slots.
        ///
        /// # Panics
        ///
        /// Panics if `ring_capacity < 2`.
        pub fn new(config: HubConfig) -> Hub {
            assert!(config.ring_capacity >= 2, "hub ring capacity must be ≥ 2");
            let slots = (0..config.workers)
                .map(|_| WorkerSlot::new(config.ring_capacity))
                .collect();
            let workers = (0..config.workers)
                .map(|worker| WorkerProgress {
                    worker,
                    task: u64::MAX,
                    ..WorkerProgress::default()
                })
                .collect();
            Hub {
                inner: Arc::new(HubInner {
                    config,
                    started: Instant::now(),
                    slots,
                    agg: Mutex::new(AggState {
                        workers,
                        epoch: 0,
                        merges: 0,
                        merge_ns: 0,
                    }),
                }),
            }
        }

        /// A hub with the default config for `workers` slots.
        pub fn with_workers(workers: usize) -> Hub {
            Hub::new(HubConfig::with_workers(workers))
        }

        /// The configuration.
        pub fn config(&self) -> HubConfig {
            self.inner.config
        }

        /// µs since the hub was created (the hub clock beats and
        /// snapshots are stamped with).
        pub fn now_us(&self) -> u64 {
            self.inner.started.elapsed().as_micros() as u64
        }

        /// Claims worker slot `index`'s producer handle. Each slot has
        /// exactly one producer: the first claim wins, later claims
        /// (and out-of-range indices) get `None`.
        pub fn worker(&self, index: usize) -> Option<HubWorker> {
            let slot = self.inner.slots.get(index)?;
            // ord: AcqRel swap pairs claim attempts with each other so
            // exactly one caller wins the slot.
            if slot.claimed.swap(true, Ordering::AcqRel) {
                return None;
            }
            Some(HubWorker {
                inner: Arc::clone(&self.inner),
                index,
            })
        }

        /// Drains every ring, merges newest beats into the retained
        /// per-worker rows, bumps the epoch, and returns the merged
        /// view. Aggregation is serialised internally (single-
        /// aggregator); workers never block on it.
        pub fn snapshot(&self) -> HubSnapshot {
            let t0 = Instant::now();
            let mut agg = match self.inner.agg.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            for (slot, row) in self.inner.slots.iter().zip(agg.workers.iter_mut()) {
                // SPSC drain: everything in [tail, head) is complete
                // (the producer publishes head with Release after the
                // slot words), and advancing tail with Release hands
                // the slots back to the producer.
                // ord: Acquire pairs with the producer's Release head
                // store in publish(): everything below `head` is fully
                // written before we read it.
                let head = slot.head.load(Ordering::Acquire);
                // ord: Relaxed — tail is consumer-owned (we are the only
                // writer, under the agg mutex).
                let tail = slot.tail.load(Ordering::Relaxed);
                let cap = slot.ring.len() as u64;
                let mut words = [0u64; BEAT_WORDS];
                for seq in tail..head {
                    let cell = &slot.ring[(seq % cap) as usize];
                    for (w, c) in words.iter_mut().zip(cell.iter()) {
                        // ord: Relaxed — covered by the Acquire head
                        // load above (the producer wrote these before
                        // its Release head bump).
                        *w = c.load(Ordering::Relaxed);
                    }
                    let (beat, beat_seq, wall_us) = Beat::decode(&words);
                    debug_assert_eq!(beat_seq, seq, "ring sequence mismatch");
                    row.state = beat.state;
                    row.task = beat.task;
                    row.tasks_done = beat.tasks_done;
                    row.instructions = beat.instructions;
                    row.l2_misses = beat.l2_misses;
                    row.migrations = beat.migrations;
                    row.f_value = beat.f_value;
                    row.a_r = beat.a_r;
                    row.bus_bytes = beat.bus_bytes;
                    row.wall_us = wall_us;
                    row.beats += 1;
                }
                if head != tail {
                    // ord: Release pairs with the producer's Acquire
                    // tail load in publish(): the cells are ours no
                    // longer once tail advances.
                    slot.tail.store(head, Ordering::Release);
                }
                // ord: Relaxed — a monotone counter read for display;
                // exact only after the producer is joined.
                row.dropped = slot.dropped.load(Ordering::Relaxed);
            }
            let now_us = self.now_us();
            for row in agg.workers.iter_mut() {
                row.age_us = if row.beats == 0 {
                    0
                } else {
                    now_us.saturating_sub(row.wall_us)
                };
            }
            agg.epoch += 1;
            agg.merges += 1;
            agg.merge_ns += t0.elapsed().as_nanos() as u64;
            HubSnapshot {
                epoch: agg.epoch,
                taken_us: now_us,
                workers: agg.workers.clone(),
                overhead: self.overhead_locked(&agg),
            }
        }

        /// Hub self-accounting so far (without forcing a merge).
        pub fn overhead(&self) -> HubOverhead {
            let agg = match self.inner.agg.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            self.overhead_locked(&agg)
        }

        fn overhead_locked(&self, agg: &AggState) -> HubOverhead {
            let mut beats = 0u64;
            let mut dropped = 0u64;
            let mut publish_ns = 0u64;
            for slot in &self.inner.slots {
                // Monotone self-accounting counters: readers tolerate
                // slight lag, exact once the producer thread is joined.
                beats += slot.published.load(Ordering::Relaxed); // ord: monotone counter
                dropped += slot.dropped.load(Ordering::Relaxed); // ord: monotone counter
                publish_ns += slot.publish_ns.load(Ordering::Relaxed); // ord: monotone counter
            }
            HubOverhead {
                beats,
                dropped,
                bytes: beats * (BEAT_WORDS as u64) * 8,
                publish_ns,
                merges: agg.merges,
                merge_ns: agg.merge_ns,
            }
        }

        /// Merges and reduces to the `/healthz` verdict using the
        /// configured watchdog thresholds.
        pub fn health(&self) -> HealthReport {
            let snap = self.snapshot();
            let stalled = snap.stalled_workers(self.inner.config.stall_after_us());
            HealthReport {
                ok: stalled.is_empty(),
                workers: snap.workers.len(),
                stalled,
                epoch: snap.epoch,
            }
        }
    }

    /// A worker's producer handle (real variant). Deliberately not
    /// `Clone`: one producer per ring is what makes the ring SPSC.
    pub struct HubWorker {
        inner: Arc<HubInner>,
        index: usize,
    }

    impl std::fmt::Debug for HubWorker {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("HubWorker")
                .field("index", &self.index)
                .finish()
        }
    }

    impl HubWorker {
        /// The slot index this handle publishes to.
        pub fn index(&self) -> usize {
            self.index
        }

        /// Publishes one beat: encode, write the ring slot with relaxed
        /// stores, publish the head with one release store. A full ring
        /// drops the beat and counts the drop — the hot path never
        /// waits. Publish cost is self-measured into
        /// [`HubOverhead::publish_ns`].
        pub fn publish(&self, beat: Beat) {
            let t0 = Instant::now();
            let slot = &self.inner.slots[self.index];
            // ord: Relaxed — head is producer-owned; we are its only
            // writer.
            let head = slot.head.load(Ordering::Relaxed);
            // ord: Acquire pairs with the consumer's Release tail store
            // in snapshot(): once tail covers a cell, the consumer is
            // done reading it and we may overwrite.
            let tail = slot.tail.load(Ordering::Acquire);
            let cap = slot.ring.len() as u64;
            if head.wrapping_sub(tail) >= cap {
                // ord: Relaxed — monotone drop counter, producer-owned.
                slot.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                let wall_us = self.inner.started.elapsed().as_micros() as u64;
                let words = beat.encode(head, wall_us);
                let cell = &slot.ring[(head % cap) as usize];
                #[cfg(not(execmig_torn_slot))]
                for (c, w) in cell.iter().zip(words) {
                    // ord: Relaxed — the Release head store below
                    // publishes these words.
                    c.store(w, Ordering::Relaxed);
                }
                #[cfg(execmig_torn_slot)]
                for (i, (c, w)) in cell.iter().zip(words).enumerate() {
                    if i != 3 {
                        // ord: Relaxed — deliberately torn mutation:
                        // word 3 lands after the head bump below.
                        c.store(w, Ordering::Relaxed);
                    }
                }
                #[cfg(not(execmig_weak_head))]
                // ord: Release publishes the slot words written above;
                // pairs with the Acquire head load in snapshot().
                slot.head.store(head + 1, Ordering::Release);
                #[cfg(execmig_weak_head)]
                // ord: Relaxed — deliberately broken mutation: without
                // the release pairing, snapshot() may read torn slots.
                slot.head.store(head + 1, Ordering::Relaxed);
                #[cfg(execmig_torn_slot)]
                // ord: Relaxed — deliberately broken mutation: the
                // instructions word is published after the head bump.
                cell[3].store(words[3], Ordering::Relaxed);
                // ord: Relaxed — monotone self-accounting counter.
                slot.published.fetch_add(1, Ordering::Relaxed);
            }
            slot.publish_ns
                // ord: Relaxed — monotone self-accounting counter.
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(feature = "trace")]
pub use real::{Hub, HubWorker};

/// No-op hub compiled without the `trace` feature: zero-sized, every
/// method an empty `#[inline(always)]` body.
#[cfg(not(feature = "trace"))]
#[derive(Debug, Clone)]
pub struct Hub;

#[cfg(not(feature = "trace"))]
impl Hub {
    /// Compile-time flag: false without the `trace` feature.
    pub const ACTIVE: bool = false;

    /// Stores nothing.
    #[inline(always)]
    pub fn new(_config: HubConfig) -> Hub {
        Hub
    }

    /// Stores nothing.
    #[inline(always)]
    pub fn with_workers(_workers: usize) -> Hub {
        Hub
    }

    /// The default (empty) configuration.
    #[inline(always)]
    pub fn config(&self) -> HubConfig {
        HubConfig::default()
    }

    /// Always 0.
    #[inline(always)]
    pub fn now_us(&self) -> u64 {
        0
    }

    /// Always a no-op handle (publishing to it does nothing).
    #[inline(always)]
    pub fn worker(&self, _index: usize) -> Option<HubWorker> {
        Some(HubWorker)
    }

    /// Always empty, epoch 0.
    #[inline(always)]
    pub fn snapshot(&self) -> HubSnapshot {
        HubSnapshot::default()
    }

    /// Always zero.
    #[inline(always)]
    pub fn overhead(&self) -> HubOverhead {
        HubOverhead::default()
    }

    /// Always healthy (nothing is watched).
    #[inline(always)]
    pub fn health(&self) -> HealthReport {
        HealthReport {
            ok: true,
            ..HealthReport::default()
        }
    }
}

/// No-op producer handle compiled without the `trace` feature.
#[cfg(not(feature = "trace"))]
#[derive(Debug)]
pub struct HubWorker;

#[cfg(not(feature = "trace"))]
impl HubWorker {
    /// Always 0.
    #[inline(always)]
    pub fn index(&self) -> usize {
        0
    }

    /// Does nothing.
    #[inline(always)]
    pub fn publish(&self, _beat: Beat) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat(instructions: u64, state: WorkerState) -> Beat {
        Beat {
            state,
            task: 7,
            tasks_done: 1,
            instructions,
            l2_misses: instructions / 10,
            migrations: 2,
            f_value: -5,
            a_r: 11,
            bus_bytes: 400,
        }
    }

    #[test]
    fn beat_roundtrips_through_words() {
        let b = beat(1234, WorkerState::Running);
        let words = b.encode(42, 99);
        let (back, seq, wall) = Beat::decode(&words);
        assert_eq!(back, b);
        assert_eq!(seq, 42);
        assert_eq!(wall, 99);
        // Negative F/A_R survive the u64 transit.
        assert_eq!(back.f_value, -5);
    }

    #[test]
    fn worker_state_roundtrip() {
        for s in [WorkerState::Idle, WorkerState::Running, WorkerState::Done] {
            assert_eq!(WorkerState::decode(s.encode()), s);
        }
        assert_eq!(WorkerState::decode(99), WorkerState::Idle);
        assert_eq!(WorkerState::Running.to_json().compact(), "\"running\"");
    }

    #[test]
    fn budget_verdicts() {
        let budget = TelemetryBudget::default();
        let cheap = HubOverhead {
            publish_ns: 1_000,
            merge_ns: 1_000,
            ..HubOverhead::default()
        };
        assert!(budget.verdict(&cheap, 1_000_000).within);
        let dear = HubOverhead {
            publish_ns: 500_000,
            ..HubOverhead::default()
        };
        let v = budget.verdict(&dear, 1_000_000);
        assert!(!v.within);
        assert!((v.fraction - 0.5).abs() < 1e-12);
        // Zero-length runs never fail the budget.
        assert!(budget.verdict(&dear, 0).within);
    }

    #[test]
    fn snapshot_json_shape() {
        let hub = Hub::with_workers(2);
        let snap = hub.snapshot();
        let j = snap.to_json();
        assert!(j.get("epoch").is_some());
        assert!(j.get("workers").is_some());
        assert!(j.get("overhead").is_some());
        assert!(j.get("total_instructions").is_some());
    }

    #[test]
    fn hub_matches_feature_mode() {
        let hub = Hub::with_workers(2);
        let w = hub.worker(0).expect("first claim");
        w.publish(beat(500, WorkerState::Running));
        w.publish(beat(900, WorkerState::Running));
        let snap = hub.snapshot();
        if Hub::ACTIVE {
            assert_eq!(snap.workers.len(), 2);
            assert_eq!(snap.epoch, 1);
            // Merge keeps the newest beat, counts both.
            assert_eq!(snap.workers[0].instructions, 900);
            assert_eq!(snap.workers[0].beats, 2);
            assert_eq!(snap.workers[0].state, WorkerState::Running);
            assert_eq!(snap.workers[1].beats, 0);
            assert_eq!(snap.total_instructions(), 900);
            // The second claim of the same slot must fail (SPSC).
            assert!(hub.worker(0).is_none(), "slot 0 already claimed");
            assert!(hub.worker(5).is_none(), "out of range");
            let o = hub.overhead();
            assert_eq!(o.beats, 2);
            assert_eq!(o.bytes, 2 * (BEAT_WORDS as u64) * 8);
            assert!(o.merges >= 1);
        } else {
            assert_eq!(snap.workers.len(), 0);
            assert_eq!(snap.epoch, 0);
            assert_eq!(hub.overhead(), HubOverhead::default());
            assert_eq!(std::mem::size_of::<Hub>(), 0);
            assert_eq!(std::mem::size_of::<HubWorker>(), 0);
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn full_ring_drops_and_counts() {
        let hub = Hub::new(HubConfig {
            workers: 1,
            ring_capacity: 4,
            ..HubConfig::with_workers(1)
        });
        let w = hub.worker(0).expect("claim");
        for k in 0..10u64 {
            w.publish(beat(k, WorkerState::Running));
        }
        let snap = hub.snapshot();
        assert_eq!(snap.workers[0].beats, 4, "ring holds 4");
        assert_eq!(snap.workers[0].dropped, 6);
        // The newest *retained* beat is the 4th (index 3).
        assert_eq!(snap.workers[0].instructions, 3);
        // After the drain the ring has room again.
        w.publish(beat(77, WorkerState::Done));
        let snap = hub.snapshot();
        assert_eq!(snap.workers[0].instructions, 77);
        assert_eq!(snap.workers[0].state, WorkerState::Done);
        assert_eq!(snap.epoch, 2);
    }

    #[cfg(feature = "trace")]
    #[cfg_attr(miri, ignore = "unbounded spin publishers are too slow under miri")]
    #[test]
    fn concurrent_publish_and_merge() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let hub = Hub::with_workers(4);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for i in 0..4 {
                let w = hub.worker(i).expect("claim");
                let stop = &stop;
                scope.spawn(move || {
                    let mut k = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        k += 1;
                        w.publish(beat(k, WorkerState::Running));
                    }
                    let mut last = beat(k, WorkerState::Done);
                    last.instructions = u64::MAX;
                    w.publish(last);
                });
            }
            // Merge concurrently with the publishers, repeatedly.
            let mut floor = [0u64; 4];
            for _ in 0..200 {
                let snap = hub.snapshot();
                for row in &snap.workers {
                    // Monotone per-worker progress: merged rows never
                    // see torn beats (instructions only grow, and only
                    // the Done beat carries the MAX sentinel).
                    assert!(row.instructions >= floor[row.worker]);
                    floor[row.worker] = row.instructions;
                    if row.instructions == u64::MAX {
                        assert_eq!(row.state, WorkerState::Done);
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Final merge sees every worker's Done beat (rings may have
        // dropped earlier beats, never blocked).
        let mut snap = hub.snapshot();
        if !snap.all_done() {
            // The Done beat may itself have been dropped on a full
            // ring; drain once more after the drop counters settle.
            snap = hub.snapshot();
        }
        let o = hub.overhead();
        assert!(o.beats > 0);
        assert!(o.merges >= 201);
        assert!(snap.epoch >= 201);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn stall_watchdog_flags_silent_running_worker() {
        let hub = Hub::new(HubConfig {
            workers: 2,
            ring_capacity: 8,
            heartbeat_us: 1, // 1 µs heartbeat: anything is late
            stall_beats: 2,
        });
        let w = hub.worker(0).expect("claim");
        w.publish(beat(10, WorkerState::Running));
        std::thread::sleep(std::time::Duration::from_millis(5));
        let health = hub.health();
        assert!(!health.ok);
        assert_eq!(health.stalled, vec![0], "only the running worker");
        // A Done worker is never stalled, however silent.
        w.publish(beat(20, WorkerState::Done));
        let health = hub.health();
        assert!(health.ok);
        // Idle (beat-less) workers are not stalled either.
        assert!(!health.stalled.contains(&1));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn publish_cost_is_accounted() {
        let hub = Hub::with_workers(1);
        let w = hub.worker(0).expect("claim");
        for k in 0..32u64 {
            w.publish(beat(k, WorkerState::Running));
            let _ = hub.snapshot();
        }
        let o = hub.overhead();
        assert_eq!(o.beats, 32);
        assert!(o.merges >= 32);
        // Publishing and merging both cost nonzero measured time.
        assert!(o.publish_ns > 0);
        assert!(o.merge_ns > 0);
        assert!(o.total_ns() == o.publish_ns + o.merge_ns);
    }
}
