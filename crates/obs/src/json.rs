//! A minimal JSON value model and serialiser.
//!
//! The workspace is dependency-free by policy (ROADMAP: no external
//! crates), so exporters build on this instead of serde. [`ToJson`] is
//! the workspace's serialisation trait; the [`impl_to_json!`] macro
//! derives it for plain structs so exporters don't hand-roll field
//! lists.

use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float. Non-finite values serialise as `null` (JSON has no
    /// NaN/∞ literals).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field (builder style). Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl ToJson) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.to_json())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact one-line rendering.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (the layout
    /// `serde_json::to_string_pretty` produced in earlier revisions, so
    /// downstream plotting scripts keep working).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Formats a float the way `serde_json` does: integral values keep a
/// trailing `.0`, non-finite values become `null`.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a JSON document into a [`Json`] value.
///
/// The inverse of [`Json::compact`]/[`Json::pretty`], so artefacts the
/// workspace writes (benchmark files, run manifests, exported metrics)
/// can be read back without external crates. Integral numbers without
/// exponent become [`Json::UInt`]/[`Json::Int`]; everything else
/// numeric becomes [`Json::Num`]. Trailing content after the document
/// is an error.
pub fn parse(input: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing content after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.at,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.at;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.at += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.at += 4;
                            // Surrogate pairs are not produced by this
                            // repo's writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonParseError {
                message: format!("invalid number {text:?}"),
                offset: start,
            })
    }
}

/// Conversion into a [`Json`] value. Implemented for primitives and the
/// usual containers; derive it for structs with [`impl_to_json!`].
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Derives [`ToJson`] for a struct: each listed field becomes an object
/// key of the same name, serialised with the field type's own `ToJson`.
///
/// ```
/// use execmig_obs::{impl_to_json, ToJson};
/// struct Row { name: String, hits: u64 }
/// impl_to_json!(Row { name, hits });
/// let j = Row { name: "art".into(), hits: 3 }.to_json();
/// assert_eq!(j.compact(), r#"{"name":"art","hits":3}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(Json::Null.compact(), "null");
        assert_eq!(true.to_json().compact(), "true");
        assert_eq!(42u64.to_json().compact(), "42");
        assert_eq!((-7i64).to_json().compact(), "-7");
        assert_eq!(1.5f64.to_json().compact(), "1.5");
        assert_eq!(2.0f64.to_json().compact(), "2.0", "integral float keeps .0");
        assert_eq!(f64::NAN.to_json().compact(), "null");
        assert_eq!(f64::INFINITY.to_json().compact(), "null");
        assert_eq!("a\"b\n".to_json().compact(), r#""a\"b\n""#);
    }

    #[test]
    fn containers_render() {
        assert_eq!(vec![1u64, 2].to_json().compact(), "[1,2]");
        assert_eq!(Option::<u64>::None.to_json().compact(), "null");
        assert_eq!(Some(3u64).to_json().compact(), "3");
        assert_eq!((1u64, 0.5f64).to_json().compact(), "[1,0.5]");
    }

    #[test]
    fn pretty_matches_serde_layout() {
        let j = Json::object()
            .field("a", 1u64)
            .field("b", vec![true, false]);
        assert_eq!(
            j.pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    false\n  ]\n}"
        );
        assert_eq!(Json::object().pretty(), "{}");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::object()
            .field("name", "art")
            .field("count", 42u64)
            .field("delta", -7i64)
            .field("rate", 0.25f64)
            .field("flags", vec![true, false])
            .field("nested", Json::object().field("x", Json::Null));
        assert_eq!(parse(&j.compact()), Ok(j.clone()));
        assert_eq!(parse(&j.pretty()), Ok(j));
    }

    #[test]
    fn parse_numbers_pick_natural_variants() {
        assert_eq!(parse("42"), Ok(Json::UInt(42)));
        assert_eq!(parse("-7"), Ok(Json::Int(-7)));
        assert_eq!(parse("2.0"), Ok(Json::Num(2.0)));
        assert_eq!(parse("1e3"), Ok(Json::Num(1000.0)));
        assert_eq!(parse("-1.5e-2"), Ok(Json::Num(-0.015)));
        assert_eq!(
            parse("18446744073709551615"),
            Ok(Json::UInt(u64::MAX)),
            "u64::MAX survives"
        );
    }

    #[test]
    fn parse_strings_unescape() {
        assert_eq!(parse(r#""a\"b\n\t\\""#), Ok(Json::Str("a\"b\n\t\\".into())));
        assert_eq!(parse(r#""A""#), Ok(Json::Str("A".into())));
        assert_eq!(parse("\"caf\u{e9}\""), Ok(Json::Str("café".into())));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "{'a':1}", "1 2", "truth", "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn parse_handles_whitespace_and_empties() {
        assert_eq!(parse(" \n{} "), Ok(Json::Obj(vec![])));
        assert_eq!(parse("[]"), Ok(Json::Arr(vec![])));
        assert_eq!(
            parse("[ 1 , 2 ]"),
            Ok(Json::Arr(vec![Json::UInt(1), Json::UInt(2)]))
        );
    }

    #[test]
    fn macro_derives_field_order() {
        struct S {
            x: u64,
            y: f64,
            tag: Option<String>,
        }
        impl_to_json!(S { x, y, tag });
        let s = S {
            x: 1,
            y: 0.25,
            tag: None,
        };
        assert_eq!(s.to_json().compact(), r#"{"x":1,"y":0.25,"tag":null}"#);
        assert_eq!(s.to_json().get("x"), Some(&Json::UInt(1)));
    }
}
