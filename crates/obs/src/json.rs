//! A minimal JSON value model and serialiser.
//!
//! The workspace is dependency-free by policy (ROADMAP: no external
//! crates), so exporters build on this instead of serde. [`ToJson`] is
//! the workspace's serialisation trait; the [`impl_to_json!`] macro
//! derives it for plain structs so exporters don't hand-roll field
//! lists.

use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float. Non-finite values serialise as `null` (JSON has no
    /// NaN/∞ literals).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field (builder style). Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl ToJson) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.to_json())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact one-line rendering.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (the layout
    /// `serde_json::to_string_pretty` produced in earlier revisions, so
    /// downstream plotting scripts keep working).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Formats a float the way `serde_json` does: integral values keep a
/// trailing `.0`, non-finite values become `null`.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value. Implemented for primitives and the
/// usual containers; derive it for structs with [`impl_to_json!`].
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Derives [`ToJson`] for a struct: each listed field becomes an object
/// key of the same name, serialised with the field type's own `ToJson`.
///
/// ```
/// use execmig_obs::{impl_to_json, ToJson};
/// struct Row { name: String, hits: u64 }
/// impl_to_json!(Row { name, hits });
/// let j = Row { name: "art".into(), hits: 3 }.to_json();
/// assert_eq!(j.compact(), r#"{"name":"art","hits":3}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(Json::Null.compact(), "null");
        assert_eq!(true.to_json().compact(), "true");
        assert_eq!(42u64.to_json().compact(), "42");
        assert_eq!((-7i64).to_json().compact(), "-7");
        assert_eq!(1.5f64.to_json().compact(), "1.5");
        assert_eq!(2.0f64.to_json().compact(), "2.0", "integral float keeps .0");
        assert_eq!(f64::NAN.to_json().compact(), "null");
        assert_eq!(f64::INFINITY.to_json().compact(), "null");
        assert_eq!("a\"b\n".to_json().compact(), r#""a\"b\n""#);
    }

    #[test]
    fn containers_render() {
        assert_eq!(vec![1u64, 2].to_json().compact(), "[1,2]");
        assert_eq!(Option::<u64>::None.to_json().compact(), "null");
        assert_eq!(Some(3u64).to_json().compact(), "3");
        assert_eq!((1u64, 0.5f64).to_json().compact(), "[1,0.5]");
    }

    #[test]
    fn pretty_matches_serde_layout() {
        let j = Json::object()
            .field("a", 1u64)
            .field("b", vec![true, false]);
        assert_eq!(
            j.pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    false\n  ]\n}"
        );
        assert_eq!(Json::object().pretty(), "{}");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
    }

    #[test]
    fn macro_derives_field_order() {
        struct S {
            x: u64,
            y: f64,
            tag: Option<String>,
        }
        impl_to_json!(S { x, y, tag });
        let s = S {
            x: 1,
            y: 0.25,
            tag: None,
        };
        assert_eq!(s.to_json().compact(), r#"{"x":1,"y":0.25,"tag":null}"#);
        assert_eq!(s.to_json().get("x"), Some(&Json::UInt(1)));
    }
}
