//! Observability layer for the execution-migration workspace.
//!
//! Seven pieces, all dependency-free:
//!
//! - [`tracer`]: a feature-gated event tracer. With the `trace` feature
//!   on, [`Tracer`] records typed events ([`EventKind`]) with monotonic
//!   instruction timestamps in a fixed-capacity [`EventRing`]; with it
//!   off, `Tracer` is zero-sized and every method is an empty
//!   `#[inline(always)]` body — instrumented hot paths cost nothing.
//! - [`metrics`]: named counters/gauges/log-2 [`Histogram`]s in a
//!   [`Registry`] with snapshot/delta semantics.
//! - [`export`]: JSON, CSV, and Prometheus text exposition.
//! - [`manifest`]: a [`RunManifest`] JSON artefact per experiment run.
//! - [`span`]: wall-clock [`SpanSet`] timers for parallel runners.
//! - [`profile`]: a feature-gated interval [`Profiler`] attributing
//!   misses/migrations/`F` dynamics to fixed instruction windows
//!   ([`ProfileRecord`]), with pair-merge decimation so long runs stay
//!   O(capacity). Same zero-cost-when-off discipline as [`Tracer`].
//! - [`chrome`]: Chrome Trace Event Format export of profiles and the
//!   [`EventRing`], loadable in `chrome://tracing`/Perfetto.
//! - [`hub`]: a feature-gated live-telemetry [`Hub`] — lock-free
//!   per-worker SPSC beat rings with an epoch'd snapshot merge and
//!   overhead self-accounting ([`TelemetryBudget`]). Zero-sized no-op
//!   without `trace`, like [`Tracer`]/[`Profiler`].
//! - [`http`]: a minimal, panic-free HTTP/1.1 request parser and
//!   response writer (no third-party deps).
//! - [`serve`]: the [`TelemetryServer`] serving `/metrics`,
//!   `/progress`, and `/healthz` over the in-tree HTTP stack.
//! - [`model`]: the concurrency shim — std `sync`/`thread` re-exports
//!   in real builds, the `execmig-model` interleaving checker under
//!   `--cfg execmig_model`. All thread/atomic use in the workspace
//!   goes through it (lint E012).
//! - [`wall`]: the wall-clock flight recorder — causal spans
//!   ([`wall::span`]) in per-thread SPSC rings, per-family latency
//!   histograms with p50/p99/p999, a live-stack sampler rendering
//!   collapsed (flamegraph) output, and a [`WallBudget`] overhead
//!   verdict. Same zero-cost-when-off discipline as [`Hub`].
//!
//! Serialisation rides on the in-tree [`Json`]/[`ToJson`] model (the
//! workspace builds offline, with no external crates); structs derive
//! `ToJson` via [`impl_to_json!`].

pub mod chrome;
pub mod event;
pub mod export;
pub mod http;
pub mod hub;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod model;
pub mod profile;
pub mod ring;
pub mod serve;
pub mod span;
pub mod tracer;
pub mod wall;

pub use chrome::{merge_traces, render_wall_trace, ChromeTraceBuilder};
pub use event::{EventKind, TraceEvent};
pub use export::{escape_label_value, to_csv, to_prometheus, PromKind, PromWriter};
pub use http::{parse_request, response, HttpError, Request};
pub use hub::{
    Beat, BudgetVerdict, HealthReport, Hub, HubConfig, HubOverhead, HubSnapshot, HubWorker,
    TelemetryBudget, WorkerProgress, WorkerState,
};
pub use json::{Json, JsonParseError, ToJson};
pub use manifest::RunManifest;
pub use metrics::{Histogram, MetricValue, Registry};
pub use profile::{ProfileConfig, ProfileCumulative, ProfileRecord, Profiler};
pub use ring::EventRing;
pub use serve::{MetricsProvider, TelemetryServer};
pub use span::{Span, SpanSet, Stopwatch};
pub use tracer::Tracer;
pub use wall::{
    FamilyStats, RetainedSpan, ScopedSpan, StackCount, Wall, WallBudget, WallOverhead,
    WallSnapshot, WallThread,
};
