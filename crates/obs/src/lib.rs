//! Observability layer for the execution-migration workspace.
//!
//! Five pieces, all dependency-free:
//!
//! - [`tracer`]: a feature-gated event tracer. With the `trace` feature
//!   on, [`Tracer`] records typed events ([`EventKind`]) with monotonic
//!   instruction timestamps in a fixed-capacity [`EventRing`]; with it
//!   off, `Tracer` is zero-sized and every method is an empty
//!   `#[inline(always)]` body — instrumented hot paths cost nothing.
//! - [`metrics`]: named counters/gauges/log-2 [`Histogram`]s in a
//!   [`Registry`] with snapshot/delta semantics.
//! - [`export`]: JSON, CSV, and Prometheus text exposition.
//! - [`manifest`]: a [`RunManifest`] JSON artefact per experiment run.
//! - [`span`]: wall-clock [`SpanSet`] timers for parallel runners.
//!
//! Serialisation rides on the in-tree [`Json`]/[`ToJson`] model (the
//! workspace builds offline, with no external crates); structs derive
//! `ToJson` via [`impl_to_json!`].

pub mod event;
pub mod export;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod ring;
pub mod span;
pub mod tracer;

pub use event::{EventKind, TraceEvent};
pub use export::{to_csv, to_prometheus};
pub use json::{Json, ToJson};
pub use manifest::RunManifest;
pub use metrics::{Histogram, MetricValue, Registry};
pub use ring::EventRing;
pub use span::{Span, SpanSet, Stopwatch};
pub use tracer::Tracer;
