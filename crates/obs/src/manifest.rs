//! Run manifests: one JSON artefact per experiment run recording
//! everything needed to reproduce it — the binary, its arguments, the
//! full configuration, workload seed, instruction budget, wall-clock,
//! crate version, and the run's headline statistics.

use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{Json, ToJson};
use crate::span::Stopwatch;

/// A reproducibility record for one experiment run.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Binary (or experiment) name.
    pub binary: String,
    /// Workspace crate version.
    pub crate_version: String,
    /// Command-line arguments (without argv\[0\]).
    pub args: Vec<String>,
    /// Full experiment configuration.
    pub config: Json,
    /// Workload seed, when the experiment draws randomness.
    pub workload_seed: Option<u64>,
    /// Instruction budget, when the experiment simulates a machine.
    pub instruction_budget: Option<u64>,
    /// Wall-clock duration of the run, seconds.
    pub wall_seconds: f64,
    /// Headline statistics of the run (tier-1 stats, row counts, …).
    pub stats: Json,
    /// Unix time (ms) when the manifest was finalised.
    pub finished_unix_ms: u64,
}

impl RunManifest {
    /// Starts a manifest for `binary`, capturing the process arguments
    /// and crate version.
    pub fn new(binary: &str) -> Self {
        RunManifest {
            binary: binary.to_string(),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            args: std::env::args().skip(1).collect(),
            config: Json::Null,
            workload_seed: None,
            instruction_budget: None,
            wall_seconds: 0.0,
            stats: Json::Null,
            finished_unix_ms: 0,
        }
    }

    /// Stamps wall-clock and completion time from `started`.
    pub fn finish(&mut self, started: &Stopwatch) {
        self.wall_seconds = started.elapsed_seconds();
        self.finished_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
    }

    /// Writes the manifest as pretty JSON to `dir/<binary>.json`,
    /// creating `dir` if needed. Returns the path written.
    pub fn write_under(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.binary));
        std::fs::write(&path, self.to_json().pretty() + "\n")?;
        Ok(path)
    }
}

impl ToJson for RunManifest {
    fn to_json(&self) -> Json {
        Json::object()
            .field("binary", &self.binary)
            .field("crate_version", &self.crate_version)
            .field("args", &self.args)
            .field("config", &self.config)
            .field("workload_seed", self.workload_seed)
            .field("instruction_budget", self.instruction_budget)
            .field("wall_seconds", self.wall_seconds)
            .field("stats", &self.stats)
            .field("finished_unix_ms", self.finished_unix_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trip_fields() {
        let mut m = RunManifest::new("table2");
        m.config = Json::object().field("cores", 4u64);
        m.workload_seed = Some(7);
        m.instruction_budget = Some(1_000_000);
        m.stats = Json::object().field("rows", 12u64);
        let sw = Stopwatch::start();
        m.finish(&sw);
        let j = m.to_json();
        assert_eq!(j.get("binary"), Some(&Json::Str("table2".into())));
        assert_eq!(j.get("workload_seed"), Some(&Json::UInt(7)));
        assert_eq!(j.get("instruction_budget"), Some(&Json::UInt(1_000_000)));
        assert_eq!(
            j.get("config").and_then(|c| c.get("cores")),
            Some(&Json::UInt(4))
        );
        assert!(m.finished_unix_ms > 0);
        assert_eq!(m.crate_version, env!("CARGO_PKG_VERSION"));
    }

    #[test]
    fn writes_a_file() {
        let dir = std::env::temp_dir().join("execmig-obs-manifest-test");
        let m = RunManifest::new("unit_test_run");
        let path = m.write_under(&dir).expect("write manifest");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("\"binary\": \"unit_test_run\""));
        std::fs::remove_file(path).ok();
    }
}
