//! Metrics: counters, gauges, log-2 histograms, and a named registry
//! with snapshot/delta semantics.
//!
//! Histograms are power-of-two bucketed — the natural shape for the
//! quantities this repo cares about (migration inter-arrival distance,
//! filter dwell time, affinity-cache age-at-eviction), all of which
//! span many decades. Bucket 0 holds the value 0; bucket `k` (1..=64)
//! holds values in `[2^(k-1), 2^k)`.

/// Number of histogram buckets (value 0 + one per power of two).
pub const BUCKETS: usize = 65;

/// A log-2 bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index holding `value`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Largest value bucket `i` can hold (inclusive).
    pub fn bucket_upper(i: usize) -> u64 {
        assert!(i < BUCKETS, "bucket {i} out of range");
        if i == 0 {
            0
        } else if i == 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket sample counts.
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Upper bound (inclusive) of the bucket containing the
    /// `q`-quantile (`0.0..=1.0`); 0 when empty. Log-2 bucketing makes
    /// this exact to within a factor of two — plenty for dwell/distance
    /// distributions. The extremes are exact: `q ≤ 0` returns
    /// [`min`](Self::min) (not the first occupied bucket's upper
    /// bound), and answers never exceed [`max`](Self::max).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Samples recorded since `earlier` (per-bucket subtraction).
    /// `earlier` must be a previous snapshot of this histogram.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for i in 0..BUCKETS {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        // min/max of the delta window are not recoverable from
        // snapshots; keep the conservative envelope.
        out.min = self.min;
        out.max = self.max;
        if out.count == 0 {
            out.min = u64::MAX;
            out.max = 0;
        }
        out
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for i in 0..BUCKETS {
            self.counts[i] += other.counts[i];
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// A compact ASCII rendering: one line per non-empty bucket with a
    /// proportional bar. Used by `obs_report`.
    pub fn render(&self, width: usize) -> String {
        if self.count == 0 {
            return "  (empty)\n".to_string();
        }
        let peak = *self.counts.iter().max().unwrap();
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c as f64 / peak as f64) * width as f64).ceil() as usize);
            let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
            out.push_str(&format!(
                "  [{:>12} .. {:>12}] {:>10}  {}\n",
                lo,
                Self::bucket_upper(i),
                c,
                bar
            ));
        }
        out.push_str(&format!(
            "  count {}  mean {:.1}  p50 {}  p99 {}  max {}\n",
            self.count,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.max()
        ));
        out
    }
}

/// A metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
    /// Log-2 bucketed sample distribution.
    Histogram(Histogram),
}

/// A named collection of metrics.
///
/// A `Registry` is cheap to clone; a clone *is* a snapshot, and
/// [`delta_since`](Registry::delta_since) subtracts one snapshot from a
/// later one (counters and histogram buckets subtract; gauges keep the
/// later value).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: Vec<(String, MetricValue)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn upsert(&mut self, name: &str, value: MetricValue) {
        match self.metrics.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.metrics.push((name.to_string(), value)),
        }
    }

    /// Sets a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.upsert(name, MetricValue::Counter(value));
    }

    /// Sets a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.upsert(name, MetricValue::Gauge(value));
    }

    /// Registers a histogram (cloned).
    pub fn histogram(&mut self, name: &str, value: &Histogram) {
        self.upsert(name, MetricValue::Histogram(value.clone()));
    }

    /// Metric count.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// All metrics, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// A counter's value, if `name` is a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// A point-in-time copy (registries are plain data, so this is just
    /// a clone — named for intent at call sites).
    pub fn snapshot(&self) -> Registry {
        self.clone()
    }

    /// The change since `earlier`: counters and histograms subtract,
    /// gauges keep `self`'s value, metrics absent from `earlier` pass
    /// through unchanged.
    pub fn delta_since(&self, earlier: &Registry) -> Registry {
        let mut out = Registry::new();
        for (name, value) in &self.metrics {
            let delta = match (value, earlier.get(name)) {
                (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                    MetricValue::Counter(now.saturating_sub(*then))
                }
                (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                    MetricValue::Histogram(now.delta_since(then))
                }
                (v, _) => v.clone(),
            };
            out.metrics.push((name.clone(), delta));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Every bucket's upper bound maps back into it.
        for i in 0..BUCKETS {
            assert_eq!(
                Histogram::bucket_of(Histogram::bucket_upper(i)),
                i,
                "bucket {i}"
            );
        }
    }

    #[test]
    fn observe_accumulates() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        for v in [0, 1, 1, 5, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket_counts()[0], 1); // 0
        assert_eq!(h.bucket_counts()[1], 2); // 1, 1
        assert_eq!(h.bucket_counts()[3], 1); // 5
        assert_eq!(h.bucket_counts()[10], 1); // 1000
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.observe(10);
        }
        for _ in 0..10 {
            h.observe(100_000);
        }
        assert_eq!(h.quantile(0.5), 15, "p50 in the [8,16) bucket");
        assert!(h.quantile(0.99) >= 65_536, "p99 in the tail bucket");
        assert_eq!(h.quantile(1.0), h.max().min(Histogram::bucket_upper(17)));
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn p0_is_the_exact_minimum() {
        let mut h = Histogram::new();
        // min is 9, inside the [8,16) bucket whose upper bound is 15:
        // p0 must report 9, not 15.
        for v in [9, 12, 1000] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 9);
        assert_eq!(h.quantile(-1.0), 9, "q clamps from below");
        assert!(h.quantile(f64::EPSILON) >= h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty: every quantile is 0.
        let empty = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(empty.quantile(q), 0, "empty at q={q}");
        }
        // Single bucket: all quantiles collapse to it, exact at the
        // extremes.
        let mut single = Histogram::new();
        for _ in 0..10 {
            single.observe(5);
        }
        assert_eq!(single.quantile(0.0), 5);
        assert_eq!(single.quantile(0.5), 5, "bucket upper bound caps at max");
        assert_eq!(single.quantile(1.0), 5);
        // Saturated max bucket: u64::MAX lands in bucket 64 and must
        // not overflow the upper-bound computation.
        let mut sat = Histogram::new();
        sat.observe(u64::MAX);
        sat.observe(u64::MAX - 1);
        assert_eq!(sat.quantile(0.0), u64::MAX - 1);
        assert_eq!(sat.quantile(1.0), u64::MAX);
        assert_eq!(sat.max(), u64::MAX);
    }

    #[test]
    fn tail_quantiles_with_few_samples() {
        // One sample: every quantile is that sample — the p999 of a
        // span family that fired once must read as its only latency,
        // not its bucket's upper bound (1023 for a 700 ns sample).
        let mut one = Histogram::new();
        one.observe(700);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(one.quantile(q), 700, "single sample at q={q}");
        }
        // Five samples with one far-tail outlier (the span-latency
        // shape): nearest-rank p999 lands on the outlier's bucket and
        // clamps to the exact maximum; p50 stays in the body.
        let mut h = Histogram::new();
        for v in [100, 110, 120, 130, 5_000] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.999), 5_000, "tail clamps to the exact max");
        assert_eq!(h.quantile(1.0), 5_000);
        assert_eq!(h.quantile(0.5), 127, "p50 is the body bucket's upper bound");
        assert!(
            h.quantile(0.99) <= h.quantile(0.999),
            "quantiles are monotone"
        );
        assert_eq!(h.quantile(0.0), 100, "q<=0 is the exact minimum");
        assert_eq!(h.quantile(-1.0), 100);
    }

    #[test]
    fn tail_quantiles_survive_merge_and_delta() {
        // A per-thread histogram merged into the aggregate (the wall
        // snapshot path): the merged p999 must see the other side's
        // outlier and clamp to the merged maximum.
        let mut agg = Histogram::new();
        for v in [100, 110, 120] {
            agg.observe(v);
        }
        let before = agg.clone();
        let mut incoming = Histogram::new();
        incoming.observe(90);
        incoming.observe(8_000);
        agg.merge(&incoming);
        assert_eq!(agg.count(), 5);
        assert_eq!(
            agg.quantile(0.999),
            8_000,
            "merged tail clamps to merged max"
        );
        assert_eq!(agg.quantile(0.0), 90, "merged min adopts the smaller side");
        // The delta window since the pre-merge snapshot holds exactly
        // the merged-in samples; its p999 still reads the outlier
        // (the envelope is conservative: delta max is self's max).
        let d = agg.delta_since(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.quantile(0.999), 8_000);
        // And an empty delta yields zero quantiles at every q.
        let e = agg.delta_since(&agg.clone());
        assert!(e.is_empty());
        assert_eq!(e.quantile(0.999), 0);
    }

    #[test]
    fn merge_and_delta_edge_cases() {
        // Merging an empty histogram changes nothing, including the
        // min/max envelope.
        let mut a = Histogram::new();
        a.observe(42);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        // Merging *into* an empty histogram adopts the other envelope.
        let mut fresh = Histogram::new();
        fresh.merge(&before);
        assert_eq!(fresh.min(), 42);
        assert_eq!(fresh.max(), 42);
        // Delta against itself is empty with a reset envelope.
        let d = a.delta_since(&a.clone());
        assert!(d.is_empty());
        assert_eq!(d.min(), 0);
        assert_eq!(d.max(), 0);
        assert_eq!(d.quantile(0.0), 0);
        // Saturated-sum histograms subtract without underflow.
        let mut big = Histogram::new();
        big.observe(u64::MAX);
        big.observe(u64::MAX);
        assert_eq!(big.sum(), u64::MAX, "sum saturates");
        let d = big.delta_since(&before);
        assert_eq!(d.count(), 1, "counts still subtract");
    }

    #[test]
    fn delta_subtracts_buckets() {
        let mut h = Histogram::new();
        h.observe(4);
        h.observe(9);
        let snap = h.clone();
        h.observe(9);
        h.observe(300);
        let d = h.delta_since(&snap);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 309);
        assert_eq!(d.bucket_counts()[4], 1); // the new 9
        assert_eq!(d.bucket_counts()[9], 1); // 300
        assert_eq!(d.bucket_counts()[3], 0); // 4 was before the snapshot
    }

    #[test]
    fn merge_adds() {
        let mut a = Histogram::new();
        a.observe(1);
        let mut b = Histogram::new();
        b.observe(64);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 64);
        assert_eq!(a.min(), 1);
    }

    #[test]
    fn registry_snapshot_delta() {
        let mut r = Registry::new();
        r.counter("migrations", 10);
        r.gauge("miss_rate", 0.5);
        let mut h = Histogram::new();
        h.observe(3);
        r.histogram("dwell", &h);

        let snap = r.snapshot();
        r.counter("migrations", 25);
        r.gauge("miss_rate", 0.25);
        h.observe(7);
        r.histogram("dwell", &h);

        let d = r.delta_since(&snap);
        assert_eq!(d.counter_value("migrations"), Some(15));
        assert_eq!(d.get("miss_rate"), Some(&MetricValue::Gauge(0.25)));
        match d.get("dwell") {
            Some(MetricValue::Histogram(dh)) => {
                assert_eq!(dh.count(), 1);
                assert_eq!(dh.sum(), 7);
            }
            other => panic!("dwell delta {other:?}"),
        }
    }

    #[test]
    fn render_is_nonempty() {
        let mut h = Histogram::new();
        h.observe(2);
        h.observe(70);
        let r = h.render(20);
        assert!(r.contains("count 2"));
        assert!(r.contains('#'));
        assert!(Histogram::new().render(20).contains("empty"));
    }
}
