//! The concurrency shim: the single sanctioned gateway to threads and
//! atomics for the whole workspace (lint E012 rejects raw
//! `std::sync::atomic`/`std::thread` imports everywhere else).
//!
//! In ordinary builds [`sync`] and [`thread`] are plain re-exports of
//! the std primitives — zero cost, zero behavior change. Under
//! `RUSTFLAGS="--cfg execmig_model"` the same names resolve to the
//! `execmig-model` wrappers instead, which route every atomic
//! load/store/RMW, fence, mutex acquisition, and thread spawn/join
//! through the bounded interleaving model checker
//! ([`execmig_model::explore`]): the checker exhaustively explores
//! thread schedules *and* every stale value a `Relaxed` load may
//! legally return under the memory model. Outside an `explore()`
//! closure the wrappers fall back to std behavior, so a model-cfg
//! build still runs the ordinary test suite unchanged.
//!
//! The price of the dual personality: code importing from this module
//! must stay on the API surface the two modes share (the std subset
//! the wrappers mirror — no `try_lock`, no `fetch_or`, …). CI builds
//! both modes, so drift fails fast. See DESIGN.md §11 for the
//! discipline and how to write a model test.

/// `Arc`, `Mutex`, the atomics, `Ordering`, and `fence` —
/// std-compatible, model-aware under `--cfg execmig_model`.
#[cfg(not(execmig_model))]
pub mod sync {
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
    pub use std::sync::{Arc, LockResult, Mutex, MutexGuard, PoisonError};
}

/// `Arc`, `Mutex`, the atomics, `Ordering`, and `fence` — routed
/// through the interleaving model checker.
#[cfg(execmig_model)]
pub mod sync {
    pub use execmig_model::sync::{
        fence, Arc, AtomicBool, AtomicU64, AtomicUsize, LockResult, Mutex, MutexGuard, Ordering,
        PoisonError,
    };
}

/// `spawn`, `scope`, `Builder`, `sleep`, `yield_now`,
/// `available_parallelism` — std-compatible, model-aware under
/// `--cfg execmig_model`.
#[cfg(not(execmig_model))]
pub mod thread {
    pub use std::thread::{
        available_parallelism, scope, sleep, spawn, yield_now, Builder, JoinHandle, Scope,
        ScopedJoinHandle,
    };
}

/// `spawn`, `scope`, `Builder`, and friends — routed through the
/// interleaving model checker.
#[cfg(execmig_model)]
pub mod thread {
    pub use execmig_model::thread::{
        available_parallelism, scope, sleep, spawn, yield_now, Builder, JoinHandle, Scope,
        ScopedJoinHandle,
    };
}
