//! Time-resolved attribution profiling.
//!
//! Aggregate counters say *how much*; the profiler says *when*. A
//! [`Profiler`] slices a run into fixed instruction intervals (default
//! [`DEFAULT_PERIOD`] = 64k instructions) and records one
//! [`ProfileRecord`] per interval: misses by cache level, migrations,
//! transition-filter sign flips, per-core residency, the filter value
//! `F` and the `A_R` register at the interval boundary, affinity-cache
//! hits/misses, and update-bus traffic. That is the §3.2–§3.6 story —
//! affinity settling, `F` sign flips, migration bursts — as data an
//! exporter (see [`crate::chrome`]) can draw.
//!
//! **Bounded memory.** Long runs must not grow the profile without
//! limit, so the record buffer is bounded: when it reaches capacity,
//! adjacent interval pairs are merged and the sampling period doubles
//! (deterministic pair-merge decimation). A run of any length costs
//! O(capacity) memory and keeps uniform time coverage; only resolution
//! degrades, by one power of two per decimation.
//!
//! **Zero cost when off.** Like [`crate::Tracer`], `Profiler` follows
//! the `trace`-feature discipline: without the feature it is a
//! zero-sized type, [`Profiler::ACTIVE`] is `false`, and every method
//! is an empty `#[inline(always)]` body. Hot paths guard sampling with
//! `if Profiler::ACTIVE { … }` so the whole block is dead code in
//! default builds (lint rule E010 enforces the gate).

use crate::json::{Json, ToJson};

/// Default sampling period, instructions per interval.
pub const DEFAULT_PERIOD: u64 = 64 << 10;

/// Default record capacity (power of two; decimation halves to it).
pub const DEFAULT_CAPACITY: usize = 4 << 10;

/// Upper bound on per-core residency slots in a record. Matches the
/// machine's core-count ceiling without depending on the machine crate
/// (obs sits below it in the layering DAG).
pub const PROFILE_MAX_CORES: usize = 8;

/// Profiler sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Instructions per sampling interval (before any decimation).
    pub period: u64,
    /// Maximum records retained; reaching it merges interval pairs and
    /// doubles the effective period. Must be even and ≥ 2.
    pub capacity: usize,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            period: DEFAULT_PERIOD,
            capacity: DEFAULT_CAPACITY,
        }
    }
}

crate::impl_to_json!(ProfileConfig { period, capacity });

/// Cumulative counters handed to [`Profiler::record_sample`]. The
/// producer (the machine) fills this from its own statistics; the
/// profiler subtracts consecutive snapshots into interval records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileCumulative {
    /// Retired instructions.
    pub instructions: u64,
    /// IL1 misses.
    pub il1_misses: u64,
    /// DL1 misses.
    pub dl1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 misses (memory accesses with a finite L3).
    pub l3_misses: u64,
    /// Controller-driven migrations.
    pub migrations: u64,
    /// Transition-filter sign flips (splitter transitions).
    pub flips: u64,
    /// Affinity-table reads that hit.
    pub affinity_hits: u64,
    /// Affinity-table reads that missed (forced `A_e = 0`).
    pub affinity_misses: u64,
    /// Bus bytes broadcast (update bus plus protocol coherence
    /// traffic).
    pub bus_bytes: u64,
    /// Remote copies invalidated by the coherence protocol (MESI).
    pub invalidations: u64,
    /// Remote copies refreshed by coherence updates (Dragon `BusUpd`).
    pub coherence_updates: u64,
    /// Instructions executed per core.
    pub residency: [u64; PROFILE_MAX_CORES],
    /// Top-level transition-filter value `F` (point-in-time).
    pub f_value: i64,
    /// `A_R` register of the top-level mechanism (point-in-time).
    pub a_r: i64,
    /// Core executing now.
    pub active_core: u8,
    /// Working-set subset designated now.
    pub subset: u8,
}

/// One sampling interval's attribution record. Counter fields are
/// deltas over `[start, end)`; `f_value`, `a_r`, `active_core`, and
/// `subset` are the state at `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileRecord {
    /// Instruction count at the interval start (inclusive).
    pub start: u64,
    /// Instruction count at the interval end (exclusive).
    pub end: u64,
    /// IL1 misses in the interval.
    pub il1_misses: u64,
    /// DL1 misses in the interval.
    pub dl1_misses: u64,
    /// L2 misses in the interval.
    pub l2_misses: u64,
    /// L3 misses in the interval.
    pub l3_misses: u64,
    /// Migrations in the interval.
    pub migrations: u64,
    /// Transition-filter sign flips in the interval.
    pub flips: u64,
    /// Affinity-table hits in the interval.
    pub affinity_hits: u64,
    /// Affinity-table misses in the interval.
    pub affinity_misses: u64,
    /// Bus bytes in the interval (update bus plus coherence traffic).
    pub bus_bytes: u64,
    /// Coherence invalidations in the interval.
    pub invalidations: u64,
    /// Coherence updates in the interval.
    pub coherence_updates: u64,
    /// Instructions per core in the interval.
    pub residency: [u64; PROFILE_MAX_CORES],
    /// `F` at the interval end.
    pub f_value: i64,
    /// `A_R` at the interval end.
    pub a_r: i64,
    /// Core active at the interval end.
    pub active_core: u8,
    /// Subset designated at the interval end.
    pub subset: u8,
}

crate::impl_to_json!(ProfileRecord {
    start,
    end,
    il1_misses,
    dl1_misses,
    l2_misses,
    l3_misses,
    migrations,
    flips,
    affinity_hits,
    affinity_misses,
    bus_bytes,
    invalidations,
    coherence_updates,
    residency,
    f_value,
    a_r,
    active_core,
    subset,
});

impl ProfileRecord {
    /// The record covering `[prev, now)`.
    pub fn between(prev: &ProfileCumulative, now: &ProfileCumulative) -> ProfileRecord {
        let mut residency = [0u64; PROFILE_MAX_CORES];
        for (slot, (a, b)) in residency
            .iter_mut()
            .zip(now.residency.iter().zip(prev.residency.iter()))
        {
            *slot = a - b;
        }
        ProfileRecord {
            start: prev.instructions,
            end: now.instructions,
            il1_misses: now.il1_misses - prev.il1_misses,
            dl1_misses: now.dl1_misses - prev.dl1_misses,
            l2_misses: now.l2_misses - prev.l2_misses,
            l3_misses: now.l3_misses - prev.l3_misses,
            migrations: now.migrations - prev.migrations,
            flips: now.flips - prev.flips,
            affinity_hits: now.affinity_hits - prev.affinity_hits,
            affinity_misses: now.affinity_misses - prev.affinity_misses,
            bus_bytes: now.bus_bytes - prev.bus_bytes,
            invalidations: now.invalidations - prev.invalidations,
            coherence_updates: now.coherence_updates - prev.coherence_updates,
            residency,
            f_value: now.f_value,
            a_r: now.a_r,
            active_core: now.active_core,
            subset: now.subset,
        }
    }

    /// Folds the chronologically `later` record into `self`: counters
    /// add, point-in-time fields take the later state. Used by
    /// decimation.
    pub fn absorb(&mut self, later: &ProfileRecord) {
        debug_assert!(self.end <= later.start, "absorb out of order");
        self.end = later.end;
        self.il1_misses += later.il1_misses;
        self.dl1_misses += later.dl1_misses;
        self.l2_misses += later.l2_misses;
        self.l3_misses += later.l3_misses;
        self.migrations += later.migrations;
        self.flips += later.flips;
        self.affinity_hits += later.affinity_hits;
        self.affinity_misses += later.affinity_misses;
        self.bus_bytes += later.bus_bytes;
        self.invalidations += later.invalidations;
        self.coherence_updates += later.coherence_updates;
        for (slot, v) in self.residency.iter_mut().zip(later.residency.iter()) {
            *slot += v;
        }
        self.f_value = later.f_value;
        self.a_r = later.a_r;
        self.active_core = later.active_core;
        self.subset = later.subset;
    }

    /// Instructions the interval covers.
    pub fn len_instructions(&self) -> u64 {
        self.end - self.start
    }

    /// Affinity-cache hit rate in the interval (0 with no reads).
    pub fn affinity_hit_rate(&self) -> f64 {
        let reads = self.affinity_hits + self.affinity_misses;
        if reads == 0 {
            0.0
        } else {
            self.affinity_hits as f64 / reads as f64
        }
    }

    /// L2 misses per kilo-instruction in the interval.
    pub fn l2_miss_density(&self) -> f64 {
        self.l2_misses as f64 * 1000.0 / self.len_instructions().max(1) as f64
    }
}

/// Serialises a profile as one JSON object: sampler settings, the
/// decimation state, and the record array. Shared by both `Profiler`
/// variants so exported artefacts have one shape.
fn profile_json(
    config: ProfileConfig,
    effective_period: u64,
    decimations: u32,
    records: &[ProfileRecord],
) -> Json {
    Json::object()
        .field("period", config.period)
        .field("capacity", config.capacity)
        .field("effective_period", effective_period)
        .field("decimations", decimations)
        .field("records", records)
}

/// Interval sampler, recording when the `trace` feature is enabled.
#[cfg(feature = "trace")]
#[derive(Debug, Clone)]
pub struct Profiler {
    config: ProfileConfig,
    /// Current sampling period (doubles on each decimation).
    period: u64,
    /// Instruction count at which the next sample is due.
    next_due: u64,
    last: ProfileCumulative,
    records: Vec<ProfileRecord>,
    decimations: u32,
}

#[cfg(feature = "trace")]
impl Profiler {
    /// Compile-time flag: true in `trace` builds. Hot paths guard
    /// sampling with this so it vanishes from default builds (E010).
    pub const ACTIVE: bool = true;

    /// A profiler with the given sizing.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `capacity` is odd or below 2.
    pub fn with_config(config: ProfileConfig) -> Self {
        assert!(config.period > 0, "profile period must be positive");
        assert!(
            config.capacity >= 2 && config.capacity.is_multiple_of(2),
            "profile capacity must be even and ≥ 2"
        );
        Profiler {
            config,
            period: config.period,
            next_due: config.period,
            last: ProfileCumulative::default(),
            records: Vec::new(),
            decimations: 0,
        }
    }

    /// True when the interval boundary has been crossed and
    /// [`record_sample`](Self::record_sample) should run. The one check
    /// hot paths pay in `trace` builds: a single compare.
    ///
    /// `sample_due` is *monotone* in `instructions_now`: once true at
    /// some count it stays true for every larger count until
    /// `record_sample` re-schedules the boundary. Block-stepping run
    /// loops rely on this to test only a block's **last** event — a
    /// false result there proves no event in the block crossed the
    /// boundary, and a true result routes the whole block through the
    /// per-event catch-up path so samples land on exactly the events a
    /// per-step loop would have sampled.
    #[inline]
    pub fn sample_due(&self, instructions_now: u64) -> bool {
        instructions_now >= self.next_due
    }

    /// The instruction count at which the next sample falls due — the
    /// boundary [`sample_due`](Self::sample_due) compares against.
    /// Lets a block-stepping caller size its next block to end at the
    /// boundary without probing `sample_due` per event.
    #[inline]
    pub fn next_due(&self) -> u64 {
        self.next_due
    }

    /// Closes the current interval at `now` (a cumulative snapshot the
    /// caller assembles) and schedules the next boundary.
    pub fn record_sample(&mut self, now: &ProfileCumulative) {
        self.records.push(ProfileRecord::between(&self.last, now));
        self.last = *now;
        if self.records.len() >= self.config.capacity {
            self.decimate();
        }
        self.next_due = (now.instructions / self.period + 1) * self.period;
    }

    /// Pair-merge decimation: halve the record count, double the
    /// period.
    fn decimate(&mut self) {
        let mut merged = Vec::with_capacity(self.records.len() / 2 + 1);
        let mut it = self.records.chunks_exact(2);
        for pair in &mut it {
            let mut a = pair[0];
            a.absorb(&pair[1]);
            merged.push(a);
        }
        merged.extend_from_slice(it.remainder());
        self.records = merged;
        self.period *= 2;
        self.decimations += 1;
    }

    /// Retained interval records, oldest first.
    pub fn records(&self) -> &[ProfileRecord] {
        &self.records
    }

    /// The sizing the profiler was built with.
    pub fn config(&self) -> ProfileConfig {
        self.config
    }

    /// Current sampling period (`config.period << decimations`).
    pub fn effective_period(&self) -> u64 {
        self.period
    }

    /// Times the record buffer was halved.
    pub fn decimations(&self) -> u32 {
        self.decimations
    }

    /// True when no interval has completed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(feature = "trace")]
impl ToJson for Profiler {
    fn to_json(&self) -> Json {
        profile_json(self.config, self.period, self.decimations, &self.records)
    }
}

/// No-op stand-in compiled when the `trace` feature is off.
#[cfg(not(feature = "trace"))]
#[derive(Debug, Clone)]
pub struct Profiler;

#[cfg(not(feature = "trace"))]
impl Profiler {
    /// Compile-time flag: false without the `trace` feature.
    pub const ACTIVE: bool = false;

    /// Ignores the sizing; the no-op profiler stores nothing.
    #[inline(always)]
    pub fn with_config(_config: ProfileConfig) -> Self {
        Profiler
    }

    /// Never due.
    #[inline(always)]
    pub fn sample_due(&self, _instructions_now: u64) -> bool {
        false
    }

    /// No boundary ever falls due: the horizon.
    #[inline(always)]
    pub fn next_due(&self) -> u64 {
        u64::MAX
    }

    /// Does nothing.
    #[inline(always)]
    pub fn record_sample(&mut self, _now: &ProfileCumulative) {}

    /// Always empty.
    #[inline(always)]
    pub fn records(&self) -> &[ProfileRecord] {
        &[]
    }

    /// The default sizing (nothing is stored either way).
    #[inline(always)]
    pub fn config(&self) -> ProfileConfig {
        ProfileConfig::default()
    }

    /// The configured period, undoubled.
    #[inline(always)]
    pub fn effective_period(&self) -> u64 {
        ProfileConfig::default().period
    }

    /// Always zero.
    #[inline(always)]
    pub fn decimations(&self) -> u32 {
        0
    }

    /// Always true.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        true
    }
}

#[cfg(not(feature = "trace"))]
impl ToJson for Profiler {
    fn to_json(&self) -> Json {
        profile_json(
            ProfileConfig::default(),
            ProfileConfig::default().period,
            0,
            &[],
        )
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::with_config(ProfileConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cum(instructions: u64, l2: u64, migrations: u64) -> ProfileCumulative {
        let mut residency = [0u64; PROFILE_MAX_CORES];
        residency[0] = instructions;
        ProfileCumulative {
            instructions,
            l2_misses: l2,
            migrations,
            residency,
            ..ProfileCumulative::default()
        }
    }

    #[test]
    fn records_are_deltas() {
        let a = cum(100, 10, 1);
        let b = cum(250, 25, 3);
        let r = ProfileRecord::between(&a, &b);
        assert_eq!(r.start, 100);
        assert_eq!(r.end, 250);
        assert_eq!(r.l2_misses, 15);
        assert_eq!(r.migrations, 2);
        assert_eq!(r.residency[0], 150);
        assert_eq!(r.len_instructions(), 150);
    }

    #[test]
    fn absorb_adds_counters_and_keeps_late_state() {
        let mut a = ProfileRecord::between(&cum(0, 0, 0), &cum(100, 4, 1));
        let mut late_cum = cum(200, 9, 1);
        late_cum.f_value = -7;
        late_cum.active_core = 3;
        let b = ProfileRecord::between(&cum(100, 4, 1), &late_cum);
        a.absorb(&b);
        assert_eq!(a.start, 0);
        assert_eq!(a.end, 200);
        assert_eq!(a.l2_misses, 9);
        assert_eq!(a.migrations, 1);
        assert_eq!(a.f_value, -7);
        assert_eq!(a.active_core, 3);
        assert_eq!(a.residency[0], 200);
    }

    #[test]
    fn hit_rate_and_density() {
        let mut r = ProfileRecord::between(&cum(0, 0, 0), &cum(1000, 50, 0));
        assert_eq!(r.affinity_hit_rate(), 0.0, "no reads");
        r.affinity_hits = 3;
        r.affinity_misses = 1;
        assert_eq!(r.affinity_hit_rate(), 0.75);
        assert_eq!(r.l2_miss_density(), 50.0);
    }

    #[test]
    fn profiler_matches_feature_mode() {
        let mut p = Profiler::with_config(ProfileConfig {
            period: 100,
            capacity: 8,
        });
        assert!(!p.sample_due(50));
        if Profiler::ACTIVE {
            assert!(p.sample_due(100));
        }
        p.record_sample(&cum(103, 5, 0));
        if Profiler::ACTIVE {
            assert_eq!(p.records().len(), 1);
            assert_eq!(p.records()[0].end, 103);
            assert!(!p.sample_due(199), "next boundary at 200");
            assert!(p.sample_due(200));
        } else {
            assert!(p.records().is_empty());
            assert!(p.is_empty());
            assert_eq!(std::mem::size_of::<Profiler>(), 0);
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn decimation_halves_and_doubles() {
        let mut p = Profiler::with_config(ProfileConfig {
            period: 10,
            capacity: 4,
        });
        for k in 1..=8u64 {
            p.record_sample(&cum(k * 10, k, 0));
        }
        // The buffer refilled to 4 records at k = 4, 6, and 8, merging
        // each time.
        assert_eq!(p.decimations(), 3);
        assert_eq!(p.effective_period(), 80);
        assert_eq!(p.records().len(), 2);
        // Total L2 misses survive decimation.
        let total: u64 = p.records().iter().map(|r| r.l2_misses).sum();
        assert_eq!(total, 8);
        // Intervals still tile the run.
        assert_eq!(p.records()[0].start, 0);
        assert_eq!(p.records()[0].end, p.records()[1].start);
        assert_eq!(p.records()[1].end, 80);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn irregular_sample_times_tile() {
        let mut p = Profiler::with_config(ProfileConfig {
            period: 100,
            capacity: 64,
        });
        // The machine samples at the first access ≥ the boundary, so
        // sample times overshoot; intervals must stay contiguous.
        for at in [103u64, 217, 305, 999] {
            assert!(p.sample_due(at));
            p.record_sample(&cum(at, at / 10, 0));
        }
        let rec = p.records();
        assert_eq!(rec[0].start, 0);
        for w in rec.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(rec.last().map(|r| r.end), Some(999));
        // 999 has not crossed the 1000 boundary yet.
        assert!(!p.sample_due(999));
        assert!(p.sample_due(1000));
    }

    /// The contract block-stepping run loops lean on: `sample_due` is
    /// monotone between recordings, so testing a block's last event is
    /// equivalent to testing every event in it, and `next_due` names
    /// the exact boundary the comparison uses.
    #[test]
    fn sample_due_is_monotone_up_to_next_due() {
        let mut p = Profiler::with_config(ProfileConfig {
            period: 100,
            capacity: 8,
        });
        if !Profiler::ACTIVE {
            // No-op profiler: never due, boundary at the horizon.
            assert_eq!(p.next_due(), u64::MAX);
            assert!(!p.sample_due(u64::MAX));
            return;
        }
        assert_eq!(p.next_due(), 100);
        // False strictly below the boundary, true from it onward —
        // monotone across any block of instruction counts.
        for at in [0u64, 1, 50, 99] {
            assert!(!p.sample_due(at));
        }
        for at in [100u64, 101, 250, 1 << 40] {
            assert!(p.sample_due(at));
        }
        // Recording at an overshot count re-schedules to the next
        // period multiple *after* the overshoot, exactly where a
        // per-step loop would sample next.
        p.record_sample(&cum(237, 1, 0));
        assert_eq!(p.next_due(), 300);
        assert!(!p.sample_due(299));
        assert!(p.sample_due(300));
    }

    #[test]
    fn json_shape_is_stable() {
        let p = Profiler::with_config(ProfileConfig::default());
        let j = p.to_json();
        assert!(j.get("period").is_some());
        assert!(j.get("effective_period").is_some());
        assert!(j.get("decimations").is_some());
        assert!(matches!(j.get("records"), Some(Json::Arr(_))));
    }

    #[cfg(feature = "trace")]
    #[test]
    #[should_panic(expected = "capacity must be even")]
    fn odd_capacity_rejected() {
        let _ = Profiler::with_config(ProfileConfig {
            period: 10,
            capacity: 3,
        });
    }
}
