//! Fixed-capacity event ring buffer.
//!
//! The tracer stores the most recent events in a preallocated ring:
//! pushes never allocate after construction, and when the ring is full
//! the oldest event is overwritten (the `dropped` counter records how
//! many were lost). This bounds tracing memory on billion-instruction
//! runs while keeping the interesting tail — the steady state — intact.

use crate::event::TraceEvent;

/// A wraparound buffer of the most recent [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the slot the next push writes.
    head: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (retained + dropped).
    pub fn pushed(&self) -> u64 {
        self.dropped + self.buf.len() as u64
    }

    /// Records an event, overwriting the oldest one when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.dropped += 1;
        }
        // Wrap with a branch, not `%`: a divide on every trace emit is
        // measurable on the hot path, the branch predicts perfectly.
        self.head += 1;
        if self.head == self.capacity {
            self.head = 0;
        }
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let split = if self.buf.len() < self.capacity {
            0
        } else {
            self.head
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// The retained events as a vector, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.iter().copied().collect()
    }

    /// Forgets all retained events (the drop counter is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at,
            kind: EventKind::L2Miss,
        }
    }

    #[test]
    fn fills_then_wraps() {
        let mut r = EventRing::new(4);
        for t in 0..4 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        let at: Vec<u64> = r.iter().map(|e| e.at).collect();
        assert_eq!(at, vec![0, 1, 2, 3]);

        // Two more: 0 and 1 are overwritten, order stays chronological.
        r.push(ev(4));
        r.push(ev(5));
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.pushed(), 6);
        let at: Vec<u64> = r.iter().map(|e| e.at).collect();
        assert_eq!(at, vec![2, 3, 4, 5]);
    }

    #[test]
    fn wraparound_many_times() {
        let mut r = EventRing::new(3);
        for t in 0..100 {
            r.push(ev(t));
        }
        assert_eq!(r.dropped(), 97);
        let at: Vec<u64> = r.to_vec().iter().map(|e| e.at).collect();
        assert_eq!(at, vec![97, 98, 99]);
    }

    #[test]
    fn partial_fill_iterates_in_order() {
        let mut r = EventRing::new(8);
        r.push(ev(10));
        r.push(ev(20));
        let at: Vec<u64> = r.iter().map(|e| e.at).collect();
        assert_eq!(at, vec![10, 20]);
        assert!(!r.is_empty());
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        EventRing::new(0);
    }
}
