//! The telemetry serving edge: a dependency-free HTTP/1.1 server
//! exposing a running experiment's live state.
//!
//! Four endpoints, all read-only:
//!
//! - `/metrics` — the metrics [`Registry`] from the caller's provider
//!   in Prometheus text exposition, plus the hub's own per-worker
//!   progress series and overhead self-accounting (and, when a
//!   [`Wall`] is attached, per-span-family latency summaries);
//! - `/progress` — the merged [`HubSnapshot`](crate::hub::HubSnapshot)
//!   as JSON: per-worker rows, aggregate totals, hub config, and the
//!   stall watchdog's view;
//! - `/spans` — the wall-clock flight recorder's
//!   [`WallSnapshot`](crate::wall::WallSnapshot) as JSON: per-family
//!   p50/p99/p999 latencies, sampled collapsed stacks, and the
//!   [`WallBudget`](crate::wall::WallBudget) overhead verdict;
//! - `/healthz` — `200 {"status":"ok"}` while every running worker is
//!   beating, `503 {"status":"stalled", …}` once a worker has missed
//!   its beat budget ([`HubConfig::stall_beats`](crate::hub::HubConfig)).
//!
//! The server owns one accept thread; each connection gets a short
//! read-timeout handler thread that speaks enough HTTP/1.1 (keep-alive,
//! pipelining, `Content-Length` framing) for curl, Prometheus scrapers,
//! and browsers. Serving never touches the workers' publish hot path —
//! request handling drives the hub's cold-side snapshot merge only.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::model::sync::{Arc, AtomicBool, AtomicUsize, Ordering};
use crate::model::thread;

use crate::export::{to_prometheus, PromKind, PromWriter};
use crate::http::{parse_request, response, HttpError};
use crate::hub::Hub;
use crate::json::{Json, ToJson};
use crate::metrics::Registry;
use crate::wall::Wall;

/// Supplies the current metrics registry on each `/metrics` scrape.
pub type MetricsProvider = Arc<dyn Fn() -> Registry + Send + Sync>;

/// How long a connection may sit idle mid-request before being closed.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Ceiling on concurrently served connections for [`start`]
/// (`TelemetryServer::start`); connections over the cap get an
/// immediate `503` and a close instead of a handler thread.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// How long a keep-alive connection may sit idle *between* requests
/// before the handler closes it. Keeps idle scrapers from pinning
/// connection-cap slots forever.
const KEEPALIVE_IDLE: Duration = Duration::from_secs(10);

/// A running telemetry server. Dropping it (or calling
/// [`shutdown`](TelemetryServer::shutdown)) stops the accept loop.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

/// One live connection's slot under the server's connection cap;
/// dropping it releases the slot on every handler exit path.
struct ConnPermit {
    active: Arc<AtomicUsize>,
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        // ord: AcqRel pairs with the accept loop's AcqRel fetch_add so
        // cap checks never double-count a freed slot.
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:9163`, port 0 for ephemeral) and
    /// starts serving `hub` and `metrics` in the background, capped at
    /// [`DEFAULT_MAX_CONNECTIONS`] concurrent connections.
    pub fn start(
        addr: impl ToSocketAddrs,
        hub: Hub,
        metrics: MetricsProvider,
    ) -> std::io::Result<TelemetryServer> {
        TelemetryServer::start_with_limit(addr, hub, metrics, DEFAULT_MAX_CONNECTIONS)
    }

    /// [`start`](TelemetryServer::start) with an explicit connection
    /// cap: at most `max_connections` handler threads live at once, and
    /// connections past the cap are answered `503` and closed without
    /// spawning anything.
    pub fn start_with_limit(
        addr: impl ToSocketAddrs,
        hub: Hub,
        metrics: MetricsProvider,
        max_connections: usize,
    ) -> std::io::Result<TelemetryServer> {
        // Spans from a zero-slot wall are impossible, so `/spans`
        // serves an honest all-empty snapshot.
        TelemetryServer::start_with_wall(addr, hub, Wall::with_threads(0), metrics, max_connections)
    }

    /// [`start_with_limit`](TelemetryServer::start_with_limit) with a
    /// wall-clock flight recorder attached: `/spans` serves its live
    /// per-family latency quantiles and `/metrics` carries its summary
    /// series.
    pub fn start_with_wall(
        addr: impl ToSocketAddrs,
        hub: Hub,
        wall: Wall,
        metrics: MetricsProvider,
        max_connections: usize,
    ) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let active = Arc::new(AtomicUsize::new(0));
        let accept_thread = thread::Builder::new()
            .name("telemetry-accept".to_string())
            .spawn(move || {
                // ord: Relaxed — stop is a standalone flag; the join in
                // shutdown() is the synchronisation point.
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut stream, _peer)) => {
                            // ord: AcqRel pairs the cap check with
                            // ConnPermit's AcqRel release.
                            if active.fetch_add(1, Ordering::AcqRel) >= max_connections {
                                active.fetch_sub(1, Ordering::AcqRel); // ord: undo, same pairing
                                let body = Json::object()
                                    .field("error", "connection capacity reached".to_string())
                                    .compact();
                                let _ = stream.write_all(&response(
                                    503,
                                    "application/json",
                                    &body,
                                    false,
                                ));
                                continue;
                            }
                            let permit = ConnPermit {
                                active: Arc::clone(&active),
                            };
                            let hub = hub.clone();
                            let wall = wall.clone();
                            let metrics = Arc::clone(&metrics);
                            let conn_stop = Arc::clone(&accept_stop);
                            // Detached: bounded by read timeouts, the
                            // idle deadline, and the stop flag, not by
                            // join. A failed spawn drops the closure —
                            // and with it the permit.
                            let _ = thread::Builder::new()
                                .name("telemetry-conn".to_string())
                                .spawn(move || {
                                    let _permit = permit;
                                    handle_connection(stream, &hub, &wall, &metrics, &conn_stop)
                                });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => thread::sleep(ACCEPT_POLL),
                    }
                }
            })?;
        Ok(TelemetryServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://addr/path` for log lines and tests.
    pub fn url(&self, path: &str) -> String {
        format!("http://{}{path}", self.addr)
    }

    /// Stops the accept loop and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // ord: Relaxed — flag only; the join below synchronises.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    hub: &Hub,
    wall: &Wall,
    metrics: &MetricsProvider,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_request = Instant::now();
    loop {
        match parse_request(&buf) {
            Ok(Some((request, consumed))) => {
                last_request = Instant::now();
                // ord: Relaxed — best-effort shutdown check; the accept
                // thread join is the synchronisation point.
                let keep_alive = !request.wants_close() && !stop.load(Ordering::Relaxed);
                let bytes = route(
                    &request.method,
                    request.path(),
                    hub,
                    wall,
                    metrics,
                    keep_alive,
                );
                if stream.write_all(&bytes).is_err() {
                    return;
                }
                buf.drain(..consumed);
                if !keep_alive {
                    return;
                }
                // Pipelined requests already buffered are served before
                // the next read.
                continue;
            }
            Ok(None) => {
                // ord: Relaxed — best-effort shutdown check.
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                match stream.read(&mut chunk) {
                    // EOF: a clean close, or a connection dropped
                    // mid-request — either way, stop quietly.
                    Ok(0) => return,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        // Idle past the timeout with a partial request
                        // buffered means the peer stalled; drop it.
                        if !buf.is_empty() {
                            return;
                        }
                        // An idle keep-alive connection holds a cap
                        // slot; evict it once it overstays the idle
                        // allowance.
                        if last_request.elapsed() >= KEEPALIVE_IDLE {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
            Err(e) => {
                let _ = stream.write_all(&error_response(&e));
                return;
            }
        }
    }
}

fn error_response(e: &HttpError) -> Vec<u8> {
    let body = Json::object().field("error", format!("{e}")).compact();
    response(e.status(), "application/json", &body, false)
}

fn route(
    method: &str,
    path: &str,
    hub: &Hub,
    wall: &Wall,
    metrics: &MetricsProvider,
    keep_alive: bool,
) -> Vec<u8> {
    if method != "GET" && method != "HEAD" {
        let body = Json::object()
            .field("error", "only GET is supported".to_string())
            .compact();
        return response(405, "application/json", &body, keep_alive);
    }
    match path {
        "/metrics" => {
            let mut text = to_prometheus(&metrics(), "execmig_");
            text.push_str(&hub_prometheus(hub));
            text.push_str(&wall_prometheus(wall));
            response(200, "text/plain; version=0.0.4", &text, keep_alive)
        }
        "/progress" => {
            let snapshot = hub.snapshot();
            let stalled = snapshot.stalled_workers(hub.config().stall_after_us());
            let body = snapshot
                .to_json()
                .field("config", hub.config())
                .field("stalled", &stalled)
                .pretty();
            response(200, "application/json", &body, keep_alive)
        }
        "/spans" => {
            // The snapshot merges every span ring (cold side only) and
            // the budget verdict rates the wall's own cost against its
            // uptime — "is tracing still cheap" in one scrape.
            let body = wall
                .snapshot()
                .to_json()
                .field("budget", wall.budget_verdict())
                .pretty();
            response(200, "application/json", &body, keep_alive)
        }
        "/healthz" => {
            let health = hub.health();
            let status = if health.ok { 200 } else { 503 };
            response(
                status,
                "application/json",
                &health.to_json().pretty(),
                keep_alive,
            )
        }
        "/" => {
            let body = Json::object()
                .field(
                    "endpoints",
                    vec![
                        "/metrics".to_string(),
                        "/progress".to_string(),
                        "/spans".to_string(),
                        "/healthz".to_string(),
                    ],
                )
                .pretty();
            response(200, "application/json", &body, keep_alive)
        }
        _ => {
            let body = Json::object()
                .field("error", format!("no such endpoint {path}"))
                .compact();
            response(404, "application/json", &body, keep_alive)
        }
    }
}

/// The hub's live state as Prometheus series: per-worker progress
/// gauges (labelled `{worker="i",state="running"}`) and the overhead
/// self-accounting counters.
pub fn hub_prometheus(hub: &Hub) -> String {
    let snapshot = hub.snapshot();
    let mut w = PromWriter::new();
    // Family-major: the exposition format requires all samples of a
    // family in one contiguous group under its TYPE line.
    type RowValue = fn(&crate::hub::WorkerProgress) -> u64;
    let families: [(&str, &str, RowValue); 6] = [
        (
            "execmig_worker_instructions",
            "Instructions retired by this worker, from its newest beat",
            |r| r.instructions,
        ),
        (
            "execmig_worker_l2_misses",
            "L2 misses by this worker",
            |r| r.l2_misses,
        ),
        (
            "execmig_worker_migrations",
            "Migrations by this worker",
            |r| r.migrations,
        ),
        (
            "execmig_worker_tasks_done",
            "Tasks completed by this worker",
            |r| r.tasks_done,
        ),
        (
            "execmig_worker_beats",
            "Beats merged from this worker",
            |r| r.beats,
        ),
        (
            "execmig_worker_beat_age_us",
            "Microseconds since this worker's newest beat",
            |r| r.age_us,
        ),
    ];
    for (name, help, value_of) in families {
        w.family(name, PromKind::Gauge, Some(help));
        for row in &snapshot.workers {
            let worker = row.worker.to_string();
            let labels: &[(&str, &str)] = &[("worker", &worker), ("state", row.state.as_str())];
            w.sample(name, labels, value_of(row) as f64);
        }
    }
    let o = snapshot.overhead;
    for (name, help, value) in [
        (
            "execmig_hub_beats_total",
            "Beats accepted into hub rings",
            o.beats,
        ),
        (
            "execmig_hub_beats_dropped_total",
            "Beats dropped on full hub rings",
            o.dropped,
        ),
        (
            "execmig_hub_bytes_total",
            "Payload bytes moved through hub rings",
            o.bytes,
        ),
        (
            "execmig_hub_publish_ns_total",
            "Nanoseconds spent inside hub publish calls",
            o.publish_ns,
        ),
        (
            "execmig_hub_merge_ns_total",
            "Nanoseconds spent inside hub snapshot merges",
            o.merge_ns,
        ),
        (
            "execmig_hub_merges_total",
            "Hub snapshot merges performed",
            o.merges,
        ),
    ] {
        w.family(name, PromKind::Counter, Some(help));
        w.sample(name, &[], value as f64);
    }
    w.family(
        "execmig_hub_epoch",
        PromKind::Gauge,
        Some("Snapshot merge epoch"),
    );
    w.sample("execmig_hub_epoch", &[], snapshot.epoch as f64);
    w.finish()
}

/// The wall-clock flight recorder's state as Prometheus series:
/// summary-style per-family latency quantiles (quantile-labelled
/// gauges plus `_count`/`_sum`, the exposition shape scrapers expect
/// from a summary) and the wall's overhead self-accounting.
pub fn wall_prometheus(wall: &Wall) -> String {
    let snapshot = wall.snapshot();
    let mut w = PromWriter::new();
    w.family(
        "execmig_span_latency_ns",
        PromKind::Gauge,
        Some("Wall-clock span latency quantiles per span family"),
    );
    for f in &snapshot.families {
        for (q, v) in [("0.5", f.p50_ns), ("0.99", f.p99_ns), ("0.999", f.p999_ns)] {
            let labels: &[(&str, &str)] = &[("family", &f.family), ("quantile", q)];
            w.sample("execmig_span_latency_ns", labels, v as f64);
        }
    }
    w.family(
        "execmig_span_latency_ns_count",
        PromKind::Counter,
        Some("Closed spans per span family"),
    );
    for f in &snapshot.families {
        let labels: &[(&str, &str)] = &[("family", &f.family)];
        w.sample("execmig_span_latency_ns_count", labels, f.count as f64);
    }
    w.family(
        "execmig_span_latency_ns_sum",
        PromKind::Counter,
        Some("Summed span duration per span family, ns"),
    );
    for f in &snapshot.families {
        let labels: &[(&str, &str)] = &[("family", &f.family)];
        w.sample("execmig_span_latency_ns_sum", labels, f.total_ns as f64);
    }
    let o = snapshot.overhead;
    for (name, help, value) in [
        (
            "execmig_wall_spans_total",
            "Spans accepted into wall rings",
            o.spans,
        ),
        (
            "execmig_wall_spans_dropped_total",
            "Spans dropped on full wall rings",
            o.dropped,
        ),
        (
            "execmig_wall_record_ns_total",
            "Nanoseconds spent inside span enter/exit",
            o.record_ns,
        ),
        (
            "execmig_wall_merge_ns_total",
            "Nanoseconds spent inside wall snapshot merges",
            o.merge_ns,
        ),
        (
            "execmig_wall_samples_total",
            "Flight-recorder sampling passes",
            o.samples,
        ),
        (
            "execmig_wall_sample_ns_total",
            "Nanoseconds spent inside flight-recorder sampling",
            o.sample_ns,
        ),
    ] {
        w.family(name, PromKind::Counter, Some(help));
        w.sample(name, &[], value as f64);
    }
    w.family(
        "execmig_wall_overhead_fraction",
        PromKind::Gauge,
        Some("Wall self-overhead as a fraction of wall uptime"),
    );
    w.sample(
        "execmig_wall_overhead_fraction",
        &[],
        wall.budget_verdict().fraction,
    );
    w.finish()
}
