//! Span timers: wall-clock measurement of labelled work units.
//!
//! [`SpanSet`] collects spans concurrently from worker threads (used by
//! `execmig-experiments::runner::parallel_map`) and summarises per-task
//! durations and per-thread utilisation.

use crate::model::sync::Mutex;
use std::time::Instant;

use crate::json::{Json, ToJson};
use crate::metrics::Histogram;

/// A started wall clock.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Microseconds elapsed.
    pub fn elapsed_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Seconds elapsed.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// What ran.
    pub label: String,
    /// Worker thread index that ran it.
    pub thread: usize,
    /// Start offset from the set's origin, in µs.
    pub start_us: u64,
    /// Duration in µs.
    pub duration_us: u64,
}

crate::impl_to_json!(Span {
    label,
    thread,
    start_us,
    duration_us
});

/// A thread-safe collection of spans sharing one time origin.
#[derive(Debug)]
pub struct SpanSet {
    origin: Stopwatch,
    spans: Mutex<Vec<Span>>,
}

impl SpanSet {
    /// An empty set; the origin is *now*.
    pub fn new() -> Self {
        SpanSet {
            origin: Stopwatch::start(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Runs `f`, recording a span around it.
    pub fn time<R>(&self, label: &str, thread: usize, f: impl FnOnce() -> R) -> R {
        let start_us = self.origin.elapsed_micros();
        let result = f();
        let duration_us = self.origin.elapsed_micros().saturating_sub(start_us);
        self.spans.lock().expect("span lock").push(Span {
            label: label.to_string(),
            thread,
            start_us,
            duration_us,
        });
        result
    }

    /// Adds an already-measured span. Workers that batch their timings
    /// locally (e.g. the experiment runner) use this to merge them in
    /// afterwards without taking the set's lock per task.
    pub fn record(&self, span: Span) {
        self.spans.lock().expect("span lock").push(span);
    }

    /// Wall-clock µs since the set was created.
    pub fn wall_micros(&self) -> u64 {
        self.origin.elapsed_micros()
    }

    /// The recorded spans, ordered by start time.
    pub fn spans(&self) -> Vec<Span> {
        let mut spans = self.spans.lock().expect("span lock").clone();
        spans.sort_by_key(|s| s.start_us);
        spans
    }

    /// Busy µs per thread index (0..=max thread seen).
    pub fn thread_busy_micros(&self) -> Vec<u64> {
        let spans = self.spans.lock().expect("span lock");
        let threads = spans.iter().map(|s| s.thread + 1).max().unwrap_or(0);
        let mut busy = vec![0u64; threads];
        for s in spans.iter() {
            busy[s.thread] += s.duration_us;
        }
        busy
    }

    /// Aggregate utilisation over `wall_us`: total busy time divided by
    /// `threads × wall`. 0 when nothing ran.
    pub fn utilisation(&self, threads: usize, wall_us: u64) -> f64 {
        if threads == 0 || wall_us == 0 {
            return 0.0;
        }
        let busy: u64 = self.thread_busy_micros().iter().sum();
        busy as f64 / (threads as f64 * wall_us as f64)
    }

    /// Span durations as a log-2 histogram (µs).
    pub fn duration_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for s in self.spans.lock().expect("span lock").iter() {
            h.observe(s.duration_us);
        }
        h
    }
}

impl Default for SpanSet {
    fn default() -> Self {
        SpanSet::new()
    }
}

impl ToJson for SpanSet {
    fn to_json(&self) -> Json {
        Json::object()
            .field("wall_us", self.wall_micros())
            .field("thread_busy_us", self.thread_busy_micros())
            .field("spans", self.spans())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_and_busy_time() {
        let set = SpanSet::new();
        let out = set.time("task-0", 0, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            7
        });
        assert_eq!(out, 7);
        set.time("task-1", 1, || ());
        let spans = set.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].label, "task-0");
        assert!(spans[0].duration_us >= 1_000, "slept 2ms: {spans:?}");
        let busy = set.thread_busy_micros();
        assert_eq!(busy.len(), 2);
        assert!(busy[0] >= 1_000);
        assert_eq!(set.duration_histogram().count(), 2);
    }

    #[test]
    fn concurrent_recording() {
        let set = SpanSet::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let set = &set;
                scope.spawn(move || {
                    for i in 0..10 {
                        set.time(&format!("t{t}-{i}"), t, || ());
                    }
                });
            }
        });
        assert_eq!(set.spans().len(), 40);
        let u = set.utilisation(4, set.wall_micros().max(1));
        assert!((0.0..=1.0).contains(&u), "utilisation {u}");
    }

    #[test]
    fn record_merges_external_spans() {
        let set = SpanSet::new();
        set.record(Span {
            label: "batched".to_string(),
            thread: 2,
            start_us: 10,
            duration_us: 5,
        });
        let spans = set.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].label, "batched");
        assert_eq!(set.thread_busy_micros(), vec![0, 0, 5]);
    }

    #[test]
    fn empty_set() {
        let set = SpanSet::new();
        assert!(set.spans().is_empty());
        assert!(set.thread_busy_micros().is_empty());
        assert_eq!(set.utilisation(4, 100), 0.0);
        assert_eq!(set.utilisation(0, 0), 0.0);
    }
}
