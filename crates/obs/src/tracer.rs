//! The feature-gated event tracer.
//!
//! With the `trace` feature on, [`Tracer`] wraps an [`EventRing`] and
//! records every emitted event. With it off, `Tracer` is a zero-sized
//! type whose methods are empty `#[inline(always)]` bodies and whose
//! [`Tracer::ACTIVE`] constant is `false` — instrumentation sites guard
//! any delta bookkeeping behind `if Tracer::ACTIVE`, so the whole block
//! is dead code the optimiser removes. The contract: **with `trace`
//! off, instrumented hot paths cost nothing.**

use crate::event::{EventKind, TraceEvent};
#[cfg(feature = "trace")]
use crate::ring::EventRing;

/// Default ring capacity used by [`Tracer::default`].
pub const DEFAULT_CAPACITY: usize = 64 << 10;

/// Records typed events when the `trace` feature is enabled.
#[cfg(feature = "trace")]
#[derive(Debug, Clone)]
pub struct Tracer {
    ring: EventRing,
}

#[cfg(feature = "trace")]
impl Tracer {
    /// Compile-time flag: true in `trace` builds. Guard per-event
    /// bookkeeping (stat deltas, timestamp reads) with this so it
    /// vanishes from non-trace builds.
    pub const ACTIVE: bool = true;

    /// A tracer retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            ring: EventRing::new(capacity),
        }
    }

    /// Records `kind` at instruction count `at`.
    #[inline]
    pub fn emit(&mut self, at: u64, kind: EventKind) {
        self.ring.push(TraceEvent { at, kind });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.to_vec()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Total events ever emitted.
    pub fn emitted(&self) -> u64 {
        self.ring.pushed()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no event is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// No-op stand-in compiled when the `trace` feature is off.
#[cfg(not(feature = "trace"))]
#[derive(Debug, Clone)]
pub struct Tracer;

#[cfg(not(feature = "trace"))]
impl Tracer {
    /// Compile-time flag: false without the `trace` feature.
    pub const ACTIVE: bool = false;

    /// Ignores the capacity; the no-op tracer stores nothing.
    #[inline(always)]
    pub fn with_capacity(_capacity: usize) -> Self {
        Tracer
    }

    /// Does nothing.
    #[inline(always)]
    pub fn emit(&mut self, _at: u64, _kind: EventKind) {}

    /// Always empty.
    #[inline(always)]
    pub fn events(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Always zero.
    #[inline(always)]
    pub fn dropped(&self) -> u64 {
        0
    }

    /// Always zero.
    #[inline(always)]
    pub fn emitted(&self) -> u64 {
        0
    }

    /// Always zero.
    #[inline(always)]
    pub fn len(&self) -> usize {
        0
    }

    /// Always true.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        true
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_is_identical_either_way() {
        // Compiles and behaves sensibly with or without the feature;
        // the assertions distinguish the two modes via ACTIVE.
        let mut t = Tracer::with_capacity(4);
        t.emit(1, EventKind::L2Miss);
        t.emit(2, EventKind::Migration { from: 0, to: 1 });
        if Tracer::ACTIVE {
            assert_eq!(t.len(), 2);
            assert_eq!(t.emitted(), 2);
            assert_eq!(t.events()[0].at, 1);
        } else {
            assert_eq!(t.len(), 0);
            assert_eq!(t.emitted(), 0);
            assert!(t.events().is_empty());
            assert!(t.is_empty());
        }
        assert_eq!(t.dropped(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn ring_semantics_apply() {
        let mut t = Tracer::with_capacity(2);
        for at in 0..5 {
            t.emit(at, EventKind::TransitionFlip);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events().last().unwrap().at, 4);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_tracer_is_zero_sized() {
        assert_eq!(std::mem::size_of::<Tracer>(), 0);
    }
}
