//! Wall-clock flight recorder: causal span tracing and latency
//! self-profiling for the simulator's *own* execution.
//!
//! The tracer, profiler, and hub all measure *simulated* time —
//! instructions, misses, migrations. This module measures where the
//! simulator spends *wall-clock* time: which runner stage, which
//! machine block, which differ case. Three consumers hang off it:
//!
//! - **Latency histograms.** Every closed span lands in a per-family
//!   log-2 [`Histogram`] (nanoseconds), so `/spans` and `/metrics` can
//!   serve live p50/p99/p999 per span family while a sweep runs.
//! - **Flight recorder.** Each thread keeps its live span stack in a
//!   fixed block of atomics; a sampler thread periodically snapshots
//!   every stack ([`Wall::sample_stacks`]) and the accumulated counts
//!   render as collapsed-stack (flamegraph-compatible) output.
//! - **Causal trace.** Closed spans carry u64 span/parent IDs, so the
//!   retained spans export as a Chrome trace
//!   ([`crate::chrome::render_wall_trace`]) that can be merged with the
//!   simulated-time profile for a dual-clock view.
//!
//! **Same discipline as the hub.** Spans are recorded into per-thread
//! bounded SPSC rings: the producer writes the record words with
//! relaxed stores and publishes them with one release store of the ring
//! head; a full ring drops the span and counts the drop — the hot path
//! never blocks. Only [`Wall::snapshot`] (cold side, mutex-guarded)
//! drains rings into histograms and the retained-span list. All
//! atomics go through [`crate::model`], so the same source
//! model-checks under `--cfg execmig_model` (see `tests/model_wall.rs`
//! and the `execmig_wall_weak_head` mutation gate).
//!
//! **Self-accounting.** The wall measures its own cost — spans
//! recorded, nanoseconds inside enter/exit, merge and sampling time —
//! as [`WallOverhead`], and [`WallBudget`] turns that into a pass/fail
//! verdict against a fraction of run time, exactly like
//! [`TelemetryBudget`](crate::hub::TelemetryBudget).
//!
//! **Zero cost when off.** Without the `trace` feature [`Wall`],
//! [`WallThread`], and [`ScopedSpan`] are zero-sized, every method is
//! an empty `#[inline(always)]` body, and [`Wall::ACTIVE`] is `false`.
//!
//! **Span-family registry.** Every span family string must come from
//! [`families`] (lint rule E014): the constants are the authority
//! table, [`families::ALL`] is its exhaustive index, and raw string
//! literals at span call sites are rejected by the linter.

use crate::hub::BudgetVerdict;
use crate::json::{Json, ToJson};
#[cfg(feature = "trace")]
use crate::metrics::Histogram;

/// The registered span-family table.
///
/// Lint rule E014 enforces two invariants: every constant declared
/// here appears in [`ALL`], and every span call site names a constant
/// from this module rather than a raw string literal — so the set of
/// span families is closed, greppable, and exhaustively indexable by
/// the histogram and flamegraph layers.
pub mod families {
    /// A whole experiment sweep (driver thread, parent of every task).
    pub const SWEEP: &str = "sweep";
    /// One runner task, claim to completion.
    pub const TASK: &str = "runner/task";
    /// Pulling the next task off the shared queue.
    pub const CLAIM: &str = "runner/claim";
    /// Executing the task closure.
    pub const RUN: &str = "runner/run";
    /// Buffering the result and publishing the completion beat.
    pub const COMPLETE: &str = "runner/complete";
    /// One observed machine block (`Machine::run_observed` beat period).
    pub const MACHINE_BLOCK: &str = "machine/block";
    /// One differ suite-lockstep case.
    pub const DIFFER_CASE: &str = "differ/case";
    /// One differ fuzz round (generate + lockstep + shrink).
    pub const DIFFER_FUZZ: &str = "differ/fuzz";

    /// Every registered family, in stable index order. The ring encodes
    /// a span's family as its index into this table.
    pub const ALL: &[&str] = &[
        SWEEP,
        TASK,
        CLAIM,
        RUN,
        COMPLETE,
        MACHINE_BLOCK,
        DIFFER_CASE,
        DIFFER_FUZZ,
    ];

    /// The table index of `family`, or `None` for unregistered strings.
    pub fn index_of(family: &str) -> Option<usize> {
        ALL.iter().position(|f| *f == family)
    }
}

/// `u64` words per encoded span record in the ring:
/// `[id, parent, family index, start_ns, dur_ns, seq]`.
pub const SPAN_WORDS: usize = 6;

/// Default span-ring capacity (spans buffered per thread between
/// merges). Spans are coarse (tasks, machine blocks), so this covers
/// seconds of headway at the default beat period.
pub const DEFAULT_SPAN_RING_CAPACITY: usize = 1024;

/// Deepest live span stack the flight recorder samples; deeper frames
/// still record to the ring but are invisible to the sampler.
pub const MAX_LIVE_DEPTH: usize = 16;

/// Retained closed spans kept for Chrome export; overflow is counted
/// in [`WallOverhead::retained_dropped`], never grows unbounded.
pub const DEFAULT_RETAINED_SPANS: usize = 8192;

/// Per-family latency stats at snapshot time (all durations in ns).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FamilyStats {
    /// Registered family name (an entry of [`families::ALL`]).
    pub family: String,
    /// Closed spans merged so far.
    pub count: u64,
    /// Summed span duration.
    pub total_ns: u64,
    /// Median latency (log-2 bucket upper bound, exact at extremes).
    pub p50_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// 99.9th-percentile latency.
    pub p999_ns: u64,
    /// Largest observed latency (exact).
    pub max_ns: u64,
}

crate::impl_to_json!(FamilyStats {
    family,
    count,
    total_ns,
    p50_ns,
    p99_ns,
    p999_ns,
    max_ns
});

/// One closed span retained for Chrome export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetainedSpan {
    /// Span id (nonzero; the thread index lives in the high bits).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Registered family name.
    pub family: String,
    /// Thread slot the span was recorded on.
    pub thread: usize,
    /// Start, ns since the wall was created.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
}

crate::impl_to_json!(RetainedSpan {
    id,
    parent,
    family,
    thread,
    start_ns,
    dur_ns
});

/// One sampled live-stack shape and how often the sampler saw it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StackCount {
    /// Semicolon-joined family names, outermost first — the collapsed
    /// stack format `flamegraph.pl` and speedscope ingest directly.
    pub stack: String,
    /// Samples that observed this stack.
    pub count: u64,
}

crate::impl_to_json!(StackCount { stack, count });

/// What the wall's own instrumentation cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WallOverhead {
    /// Spans accepted into rings.
    pub spans: u64,
    /// Spans dropped on full rings.
    pub dropped: u64,
    /// Closed spans past the retained cap (histograms still counted
    /// them; only the Chrome-export copy was discarded).
    pub retained_dropped: u64,
    /// Payload bytes moved through rings (`spans × record size`).
    pub bytes: u64,
    /// Nanoseconds inside span enter/exit, summed over threads.
    pub record_ns: u64,
    /// Snapshot merges performed.
    pub merges: u64,
    /// Nanoseconds inside the snapshot merge.
    pub merge_ns: u64,
    /// Flight-recorder sampling passes.
    pub samples: u64,
    /// Nanoseconds inside sampling passes.
    pub sample_ns: u64,
}

crate::impl_to_json!(WallOverhead {
    spans,
    dropped,
    retained_dropped,
    bytes,
    record_ns,
    merges,
    merge_ns,
    samples,
    sample_ns
});

impl WallOverhead {
    /// Total observability nanoseconds (record + merge + sample).
    pub fn total_ns(&self) -> u64 {
        self.record_ns
            .saturating_add(self.merge_ns)
            .saturating_add(self.sample_ns)
    }

    /// Observability time as a fraction of `run_ns` (0 when `run_ns`
    /// is 0).
    pub fn fraction_of(&self, run_ns: u64) -> f64 {
        if run_ns == 0 {
            0.0
        } else {
            self.total_ns() as f64 / run_ns as f64
        }
    }
}

/// A cap on how much of a run wall-clock tracing may consume, modeled
/// on [`TelemetryBudget`](crate::hub::TelemetryBudget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallBudget {
    /// Maximum tolerated `overhead / run` time fraction.
    pub max_fraction: f64,
}

impl Default for WallBudget {
    fn default() -> Self {
        // Same acceptance bar as the hub: tracing under 2 % of run time.
        WallBudget { max_fraction: 0.02 }
    }
}

impl WallBudget {
    /// Checks `overhead` against a run of `run_ns` nanoseconds.
    pub fn verdict(&self, overhead: &WallOverhead, run_ns: u64) -> BudgetVerdict {
        let fraction = overhead.fraction_of(run_ns);
        BudgetVerdict {
            fraction,
            max_fraction: self.max_fraction,
            within: fraction <= self.max_fraction,
        }
    }
}

/// An epoch-stamped merged view of every family and sampled stack.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WallSnapshot {
    /// Bumped on every merge that ran.
    pub epoch: u64,
    /// ns since the wall was created, at merge time.
    pub uptime_ns: u64,
    /// Per-family latency stats, one row per [`families::ALL`] entry.
    pub families: Vec<FamilyStats>,
    /// Collapsed-stack counts accumulated by the flight recorder.
    pub collapsed: Vec<StackCount>,
    /// Wall self-accounting at merge time.
    pub overhead: WallOverhead,
}

impl WallSnapshot {
    /// The stats row for `family`, if registered.
    pub fn family(&self, family: &str) -> Option<&FamilyStats> {
        self.families.iter().find(|f| f.family == family)
    }

    /// Closed spans across all families.
    pub fn total_spans(&self) -> u64 {
        self.families.iter().map(|f| f.count).sum()
    }

    /// The collapsed-stack text block (`stack count` per line),
    /// directly consumable by `flamegraph.pl` / speedscope.
    pub fn collapsed_text(&self) -> String {
        let mut out = String::new();
        for s in &self.collapsed {
            out.push_str(&s.stack);
            out.push(' ');
            out.push_str(&s.count.to_string());
            out.push('\n');
        }
        out
    }
}

impl ToJson for WallSnapshot {
    fn to_json(&self) -> Json {
        Json::object()
            .field("epoch", self.epoch)
            .field("uptime_ns", self.uptime_ns)
            .field("total_spans", self.total_spans())
            .field("families", &self.families)
            .field("collapsed", &self.collapsed)
            .field("overhead", self.overhead)
    }
}

#[cfg(feature = "trace")]
mod real {
    use super::*;
    use crate::model::sync::{Arc, AtomicBool, AtomicU64, Mutex, Ordering};
    use std::cell::{Cell, RefCell};
    use std::time::Instant;

    /// One thread's SPSC span ring plus its producer-side counters and
    /// the live span stack the flight recorder samples.
    struct SpanSlot {
        /// Next sequence number the producer will write (monotonic).
        head: AtomicU64,
        /// Next sequence number the consumer will read.
        tail: AtomicU64,
        /// Spans dropped on a full ring.
        dropped: AtomicU64,
        /// Spans accepted.
        published: AtomicU64,
        /// Producer nanoseconds inside enter/exit.
        record_ns: AtomicU64,
        /// Producer handle handed out already?
        claimed: AtomicBool,
        /// Live stack depth (may exceed `MAX_LIVE_DEPTH`; the sampler
        /// caps its read).
        live_depth: AtomicU64,
        /// Live stack entries: family index + 1, outermost first.
        live: [AtomicU64; MAX_LIVE_DEPTH],
        /// Fixed-size record storage; slot `i` holds sequence numbers
        /// `≡ i (mod capacity)`.
        ring: Vec<[AtomicU64; SPAN_WORDS]>,
    }

    impl SpanSlot {
        fn new(capacity: usize) -> SpanSlot {
            SpanSlot {
                head: AtomicU64::new(0),
                tail: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                published: AtomicU64::new(0),
                record_ns: AtomicU64::new(0),
                claimed: AtomicBool::new(false),
                live_depth: AtomicU64::new(0),
                live: std::array::from_fn(|_| AtomicU64::new(0)),
                ring: (0..capacity)
                    .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                    .collect(),
            }
        }
    }

    /// Cold-side merge state, guarded by one mutex (never touched by
    /// the span hot path).
    struct AggState {
        epoch: u64,
        /// Parallel to `families::ALL`.
        hists: Vec<Histogram>,
        totals: Vec<u64>,
        retained: Vec<RetainedSpan>,
        retained_dropped: u64,
        collapsed: Vec<(String, u64)>,
        merges: u64,
        merge_ns: u64,
        samples: u64,
        sample_ns: u64,
    }

    struct WallInner {
        started: Instant,
        retained_cap: usize,
        slots: Vec<SpanSlot>,
        agg: Mutex<AggState>,
    }

    /// The wall-clock flight recorder (real variant, `trace` on).
    ///
    /// Cheap to clone — clones share the same rings and merge state.
    #[derive(Clone)]
    pub struct Wall {
        inner: Arc<WallInner>,
    }

    impl std::fmt::Debug for Wall {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Wall")
                .field("threads", &self.inner.slots.len())
                .finish()
        }
    }

    impl Wall {
        /// Compile-time flag: true in `trace` builds.
        pub const ACTIVE: bool = true;

        /// A wall with `threads` slots and `ring_capacity` buffered
        /// spans per thread.
        ///
        /// # Panics
        ///
        /// Panics if `ring_capacity < 2`.
        pub fn new(threads: usize, ring_capacity: usize) -> Wall {
            assert!(ring_capacity >= 2, "span ring capacity must be ≥ 2");
            Wall {
                inner: Arc::new(WallInner {
                    started: Instant::now(),
                    retained_cap: DEFAULT_RETAINED_SPANS,
                    slots: (0..threads).map(|_| SpanSlot::new(ring_capacity)).collect(),
                    agg: Mutex::new(AggState {
                        epoch: 0,
                        hists: families::ALL.iter().map(|_| Histogram::new()).collect(),
                        totals: vec![0; families::ALL.len()],
                        retained: Vec::new(),
                        retained_dropped: 0,
                        collapsed: Vec::new(),
                        merges: 0,
                        merge_ns: 0,
                        samples: 0,
                        sample_ns: 0,
                    }),
                }),
            }
        }

        /// A wall with the default ring capacity.
        pub fn with_threads(threads: usize) -> Wall {
            Wall::new(threads, DEFAULT_SPAN_RING_CAPACITY)
        }

        /// Thread slots configured.
        pub fn threads(&self) -> usize {
            self.inner.slots.len()
        }

        /// ns since the wall was created (the clock spans are stamped
        /// with).
        pub fn now_ns(&self) -> u64 {
            self.inner.started.elapsed().as_nanos() as u64
        }

        /// Claims thread slot `index`'s producer handle. Each slot has
        /// exactly one producer: the first claim wins, later claims
        /// (and out-of-range indices) get `None`.
        pub fn thread(&self, index: usize) -> Option<WallThread> {
            let slot = self.inner.slots.get(index)?;
            // ord: AcqRel swap pairs claim attempts with each other so
            // exactly one caller wins the slot.
            if slot.claimed.swap(true, Ordering::AcqRel) {
                return None;
            }
            Some(WallThread {
                inner: Arc::clone(&self.inner),
                index,
                stack: RefCell::new(Vec::new()),
                next_id: Cell::new(0),
            })
        }

        fn agg_lock(&self) -> crate::model::sync::MutexGuard<'_, AggState> {
            match self.inner.agg.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        /// Drains every ring into the per-family histograms and the
        /// retained-span list, bumps the epoch, and returns the merged
        /// view. Cold side only; producers never block on it.
        pub fn snapshot(&self) -> WallSnapshot {
            let t0 = Instant::now();
            let mut agg = self.agg_lock();
            for (thread, slot) in self.inner.slots.iter().enumerate() {
                // SPSC drain, same protocol as the hub: everything in
                // [tail, head) is complete.
                // ord: Acquire pairs with the producer's Release head
                // store in exit(): everything below `head` is fully
                // written before we read it.
                let head = slot.head.load(Ordering::Acquire);
                // ord: Relaxed — tail is consumer-owned (we are the
                // only writer, under the agg mutex).
                let tail = slot.tail.load(Ordering::Relaxed);
                let cap = slot.ring.len() as u64;
                let mut words = [0u64; SPAN_WORDS];
                for seq in tail..head {
                    let cell = &slot.ring[(seq % cap) as usize];
                    for (w, c) in words.iter_mut().zip(cell.iter()) {
                        // ord: Relaxed — covered by the Acquire head
                        // load above (the producer wrote these before
                        // its Release head bump).
                        *w = c.load(Ordering::Relaxed);
                    }
                    let [id, parent, family, start_ns, dur_ns, rec_seq] = words;
                    debug_assert_eq!(rec_seq, seq, "span ring sequence mismatch");
                    let fi = family as usize;
                    debug_assert!(fi < families::ALL.len(), "unregistered family index");
                    debug_assert_ne!(id, 0, "span ids are nonzero");
                    if let Some(h) = agg.hists.get_mut(fi) {
                        h.observe(dur_ns);
                    }
                    if let Some(t) = agg.totals.get_mut(fi) {
                        *t = t.saturating_add(dur_ns);
                    }
                    if agg.retained.len() < self.inner.retained_cap {
                        agg.retained.push(RetainedSpan {
                            id,
                            parent,
                            family: families::ALL
                                .get(fi)
                                .copied()
                                .unwrap_or("unregistered")
                                .to_string(),
                            thread,
                            start_ns,
                            dur_ns,
                        });
                    } else {
                        agg.retained_dropped += 1;
                    }
                }
                if head != tail {
                    // ord: Release pairs with the producer's Acquire
                    // tail load in exit(): the cells are ours no longer
                    // once tail advances.
                    slot.tail.store(head, Ordering::Release);
                }
            }
            agg.epoch += 1;
            agg.merges += 1;
            agg.merge_ns += t0.elapsed().as_nanos() as u64;
            let uptime_ns = self.now_ns();
            WallSnapshot {
                epoch: agg.epoch,
                uptime_ns,
                families: families::ALL
                    .iter()
                    .enumerate()
                    .map(|(i, name)| FamilyStats {
                        family: (*name).to_string(),
                        count: agg.hists[i].count(),
                        total_ns: agg.totals[i],
                        p50_ns: agg.hists[i].quantile(0.50),
                        p99_ns: agg.hists[i].quantile(0.99),
                        p999_ns: agg.hists[i].quantile(0.999),
                        max_ns: agg.hists[i].max(),
                    })
                    .collect(),
                collapsed: agg
                    .collapsed
                    .iter()
                    .map(|(stack, count)| StackCount {
                        stack: stack.clone(),
                        count: *count,
                    })
                    .collect(),
                overhead: self.overhead_locked(&agg),
            }
        }

        /// One flight-recorder pass: reads every thread's live span
        /// stack and folds the observed shapes into the collapsed-stack
        /// counts. Returns how many non-empty stacks were observed.
        /// Approximate by design — a stack mutating mid-read yields a
        /// momentarily stale (never torn) frame.
        pub fn sample_stacks(&self) -> usize {
            let t0 = Instant::now();
            let mut seen = 0usize;
            let mut agg = self.agg_lock();
            for slot in &self.inner.slots {
                // ord: Acquire pairs with the producer's Release depth
                // store in enter(): frames below `depth` were published
                // before the depth became visible.
                let depth = slot.live_depth.load(Ordering::Acquire) as usize;
                let depth = depth.min(MAX_LIVE_DEPTH);
                if depth == 0 {
                    continue;
                }
                let mut stack = String::new();
                for entry in slot.live.iter().take(depth) {
                    // ord: Relaxed — covered by the Acquire depth load;
                    // a racing re-push can make this momentarily stale,
                    // which sampling tolerates.
                    let fam = entry.load(Ordering::Relaxed);
                    let name = (fam as usize)
                        .checked_sub(1)
                        .and_then(|i| families::ALL.get(i).copied())
                        .unwrap_or("unregistered");
                    if !stack.is_empty() {
                        stack.push(';');
                    }
                    stack.push_str(name);
                }
                seen += 1;
                match agg.collapsed.iter_mut().find(|(s, _)| *s == stack) {
                    Some((_, count)) => *count += 1,
                    None => agg.collapsed.push((stack, 1)),
                }
            }
            agg.samples += 1;
            agg.sample_ns += t0.elapsed().as_nanos() as u64;
            seen
        }

        /// Wall self-accounting so far (without forcing a merge).
        pub fn overhead(&self) -> WallOverhead {
            let agg = self.agg_lock();
            self.overhead_locked(&agg)
        }

        fn overhead_locked(&self, agg: &AggState) -> WallOverhead {
            let mut spans = 0u64;
            let mut dropped = 0u64;
            let mut record_ns = 0u64;
            for slot in &self.inner.slots {
                // Monotone self-accounting counters: readers tolerate
                // slight lag, exact once the producer thread is joined.
                spans += slot.published.load(Ordering::Relaxed); // ord: monotone counter
                dropped += slot.dropped.load(Ordering::Relaxed); // ord: monotone counter
                record_ns += slot.record_ns.load(Ordering::Relaxed); // ord: monotone counter
            }
            WallOverhead {
                spans,
                dropped,
                retained_dropped: agg.retained_dropped,
                bytes: spans * (SPAN_WORDS as u64) * 8,
                record_ns,
                merges: agg.merges,
                merge_ns: agg.merge_ns,
                samples: agg.samples,
                sample_ns: agg.sample_ns,
            }
        }

        /// The default [`WallBudget`] verdict against the wall's own
        /// uptime — the serving edge's "is tracing still cheap" answer.
        pub fn budget_verdict(&self) -> BudgetVerdict {
            WallBudget::default().verdict(&self.overhead(), self.now_ns())
        }

        /// The retained closed spans (for Chrome export). Forces a
        /// merge first so freshly closed spans are included.
        pub fn spans(&self) -> Vec<RetainedSpan> {
            let _ = self.snapshot();
            self.agg_lock().retained.clone()
        }
    }

    /// A thread's producer handle (real variant). Deliberately not
    /// `Clone`: one producer per ring is what makes the ring SPSC.
    pub struct WallThread {
        inner: Arc<WallInner>,
        index: usize,
        /// Open frames: `(id, parent, family index, start_ns)`.
        stack: RefCell<Vec<(u64, u64, u64, u64)>>,
        next_id: Cell<u64>,
    }

    impl std::fmt::Debug for WallThread {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("WallThread")
                .field("index", &self.index)
                .finish()
        }
    }

    impl WallThread {
        /// The slot index this handle records to.
        pub fn index(&self) -> usize {
            self.index
        }

        /// The id of the innermost open span, 0 when none.
        pub fn current(&self) -> u64 {
            self.stack.borrow().last().map_or(0, |f| f.0)
        }

        /// Opens a span of `family`, parented to the innermost open
        /// span on this thread. Returns the span id (0 and records
        /// nothing for unregistered families — lint E014 keeps that
        /// branch unreachable in tree). Self-measured into
        /// [`WallOverhead::record_ns`].
        pub fn enter(&self, family: &'static str) -> u64 {
            let parent = self.current();
            self.enter_with_parent(family, parent)
        }

        /// Opens a span of `family` with an explicit parent id — the
        /// cross-thread causality hook (e.g. runner tasks parented to
        /// the driver's sweep span).
        pub fn enter_with_parent(&self, family: &'static str, parent: u64) -> u64 {
            let t0 = Instant::now();
            let Some(fi) = families::index_of(family) else {
                return 0;
            };
            let slot = &self.inner.slots[self.index];
            let id = self.next_id.get() + 1;
            self.next_id.set(id);
            // Thread index in the high 16 bits keeps ids globally
            // unique without any shared allocation.
            let id = ((self.index as u64 + 1) << 48) | id;
            let start_ns = t0.duration_since(self.inner.started).as_nanos() as u64;
            let depth = {
                let mut stack = self.stack.borrow_mut();
                let depth = stack.len();
                stack.push((id, parent, fi as u64, start_ns));
                depth
            };
            if depth < MAX_LIVE_DEPTH {
                // ord: Relaxed — the Release depth store below
                // publishes this entry to the sampler.
                slot.live[depth].store(fi as u64 + 1, Ordering::Relaxed);
            }
            // ord: Release pairs with the sampler's Acquire depth load
            // in sample_stacks(): the entry above is visible before the
            // deeper stack is.
            slot.live_depth.store(depth as u64 + 1, Ordering::Release);
            slot.record_ns
                // ord: Relaxed — monotone self-accounting counter.
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            id
        }

        /// Closes the innermost open span and records it: write the
        /// ring record with relaxed stores, publish the head with one
        /// release store. A full ring drops the record and counts the
        /// drop — the hot path never waits.
        ///
        /// `id` is the value [`enter`](Self::enter) returned; a
        /// mismatch (unbalanced guards) still closes the innermost
        /// frame, keeping the stack consistent. `id == 0` is a no-op.
        pub fn exit(&self, id: u64) {
            if id == 0 {
                return;
            }
            let t0 = Instant::now();
            let Some((span_id, parent, fi, start_ns)) = self.stack.borrow_mut().pop() else {
                return;
            };
            debug_assert_eq!(span_id, id, "span guards must close LIFO");
            let slot = &self.inner.slots[self.index];
            let depth = self.stack.borrow().len() as u64;
            // ord: Release — frames at or above the new depth are dead
            // to the sampler once it loads this depth.
            slot.live_depth.store(depth, Ordering::Release);
            let end_ns = t0.duration_since(self.inner.started).as_nanos() as u64;
            let dur_ns = end_ns.saturating_sub(start_ns);
            // ord: Relaxed — head is producer-owned; we are its only
            // writer.
            let head = slot.head.load(Ordering::Relaxed);
            // ord: Acquire pairs with the consumer's Release tail store
            // in snapshot(): once tail covers a cell, the consumer is
            // done reading it and we may overwrite.
            let tail = slot.tail.load(Ordering::Acquire);
            let cap = slot.ring.len() as u64;
            if head.wrapping_sub(tail) >= cap {
                // ord: Relaxed — monotone drop counter, producer-owned.
                slot.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                let words = [span_id, parent, fi, start_ns, dur_ns, head];
                let cell = &slot.ring[(head % cap) as usize];
                for (c, w) in cell.iter().zip(words) {
                    // ord: Relaxed — the Release head store below
                    // publishes these words.
                    c.store(w, Ordering::Relaxed);
                }
                #[cfg(not(execmig_wall_weak_head))]
                // ord: Release publishes the record words written
                // above; pairs with the Acquire head load in
                // snapshot().
                slot.head.store(head + 1, Ordering::Release);
                #[cfg(execmig_wall_weak_head)]
                // ord: Relaxed — deliberately broken mutation: without
                // the release pairing, snapshot() may read torn
                // records. The model gate must detect this.
                slot.head.store(head + 1, Ordering::Relaxed);
                // ord: Relaxed — monotone self-accounting counter.
                slot.published.fetch_add(1, Ordering::Relaxed);
            }
            slot.record_ns
                // ord: Relaxed — monotone self-accounting counter.
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }

        /// Discards the innermost open span without recording it (used
        /// when a span turns out to cover nothing, e.g. a task claim
        /// that found the queue empty). `id == 0` is a no-op.
        pub fn cancel(&self, id: u64) {
            if id == 0 {
                return;
            }
            let popped = self.stack.borrow_mut().pop();
            debug_assert!(
                popped.is_none_or(|f| f.0 == id),
                "span guards must close LIFO"
            );
            let depth = self.stack.borrow().len() as u64;
            let slot = &self.inner.slots[self.index];
            // ord: Release — same sampler pairing as exit().
            slot.live_depth.store(depth, Ordering::Release);
        }
    }
}

#[cfg(feature = "trace")]
pub use real::{Wall, WallThread};

/// No-op wall compiled without the `trace` feature: zero-sized, every
/// method an empty `#[inline(always)]` body.
#[cfg(not(feature = "trace"))]
#[derive(Debug, Clone)]
pub struct Wall;

#[cfg(not(feature = "trace"))]
impl Wall {
    /// Compile-time flag: false without the `trace` feature.
    pub const ACTIVE: bool = false;

    /// Stores nothing.
    #[inline(always)]
    pub fn new(_threads: usize, _ring_capacity: usize) -> Wall {
        Wall
    }

    /// Stores nothing.
    #[inline(always)]
    pub fn with_threads(_threads: usize) -> Wall {
        Wall
    }

    /// Always 0.
    #[inline(always)]
    pub fn threads(&self) -> usize {
        0
    }

    /// Always 0.
    #[inline(always)]
    pub fn now_ns(&self) -> u64 {
        0
    }

    /// Always a no-op handle (recording to it does nothing).
    #[inline(always)]
    pub fn thread(&self, _index: usize) -> Option<WallThread> {
        Some(WallThread)
    }

    /// Always empty, epoch 0.
    #[inline(always)]
    pub fn snapshot(&self) -> WallSnapshot {
        WallSnapshot::default()
    }

    /// Always 0.
    #[inline(always)]
    pub fn sample_stacks(&self) -> usize {
        0
    }

    /// Always zero.
    #[inline(always)]
    pub fn overhead(&self) -> WallOverhead {
        WallOverhead::default()
    }

    /// Always within budget (nothing is measured).
    #[inline(always)]
    pub fn budget_verdict(&self) -> BudgetVerdict {
        WallBudget::default().verdict(&WallOverhead::default(), 0)
    }

    /// Always empty.
    #[inline(always)]
    pub fn spans(&self) -> Vec<RetainedSpan> {
        Vec::new()
    }
}

/// No-op producer handle compiled without the `trace` feature.
#[cfg(not(feature = "trace"))]
#[derive(Debug)]
pub struct WallThread;

#[cfg(not(feature = "trace"))]
impl WallThread {
    /// Always 0.
    #[inline(always)]
    pub fn index(&self) -> usize {
        0
    }

    /// Always 0.
    #[inline(always)]
    pub fn current(&self) -> u64 {
        0
    }

    /// Does nothing; always 0.
    #[inline(always)]
    pub fn enter(&self, _family: &'static str) -> u64 {
        0
    }

    /// Does nothing; always 0.
    #[inline(always)]
    pub fn enter_with_parent(&self, _family: &'static str, _parent: u64) -> u64 {
        0
    }

    /// Does nothing.
    #[inline(always)]
    pub fn exit(&self, _id: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn cancel(&self, _id: u64) {}
}

// ---------------------------------------------------------------------
// Thread-propagated context: a thread attaches its WallThread once and
// instrumentation anywhere down the call stack opens spans without
// plumbing a handle through every signature.
// ---------------------------------------------------------------------

#[cfg(feature = "trace")]
mod tls {
    use super::real::{Wall, WallThread};
    use std::cell::RefCell;

    thread_local! {
        static CURRENT: RefCell<Option<WallThread>> = const { RefCell::new(None) };
    }

    /// Claims slot `index` of `wall` and installs the handle as this
    /// thread's recording context. Returns false (and leaves any
    /// existing context in place) when the slot is already claimed or
    /// out of range.
    pub fn attach(wall: &Wall, index: usize) -> bool {
        match wall.thread(index) {
            Some(t) => {
                CURRENT.with(|c| *c.borrow_mut() = Some(t));
                true
            }
            None => false,
        }
    }

    /// Drops this thread's recording context (open guards become
    /// no-ops). The slot stays claimed — like the hub, one producer
    /// per slot per wall lifetime.
    pub fn detach() {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }

    /// The innermost open span id on this thread, 0 when none (or
    /// unattached). Hand this to [`span_with_parent`] on another
    /// thread for cross-thread causality.
    pub fn current_id() -> u64 {
        CURRENT.with(|c| c.borrow().as_ref().map_or(0, |t| t.current()))
    }

    /// An RAII span: closes (records) the span when dropped.
    #[must_use = "a span measures nothing unless held for its extent"]
    #[derive(Debug)]
    pub struct ScopedSpan {
        id: u64,
    }

    impl ScopedSpan {
        /// The span id (0 when this thread is unattached).
        pub fn id(&self) -> u64 {
            self.id
        }

        /// Discards the span without recording it.
        pub fn cancel(mut self) {
            let id = std::mem::take(&mut self.id);
            if id != 0 {
                CURRENT.with(|c| {
                    if let Some(t) = c.borrow().as_ref() {
                        t.cancel(id);
                    }
                });
            }
        }
    }

    impl Drop for ScopedSpan {
        fn drop(&mut self) {
            if self.id != 0 {
                CURRENT.with(|c| {
                    if let Some(t) = c.borrow().as_ref() {
                        t.exit(self.id);
                    }
                });
            }
        }
    }

    /// Opens a span of `family` on this thread's attached context,
    /// parented to the innermost open span. A no-op (id 0) when the
    /// thread is unattached.
    pub fn span(family: &'static str) -> ScopedSpan {
        ScopedSpan {
            id: CURRENT.with(|c| c.borrow().as_ref().map_or(0, |t| t.enter(family))),
        }
    }

    /// As [`span`], with an explicit parent id (0 for a root).
    pub fn span_with_parent(family: &'static str, parent: u64) -> ScopedSpan {
        ScopedSpan {
            id: CURRENT.with(|c| {
                c.borrow()
                    .as_ref()
                    .map_or(0, |t| t.enter_with_parent(family, parent))
            }),
        }
    }
}

#[cfg(feature = "trace")]
pub use tls::{attach, current_id, detach, span, span_with_parent, ScopedSpan};

/// No-op RAII span compiled without the `trace` feature.
#[cfg(not(feature = "trace"))]
#[must_use = "a span measures nothing unless held for its extent"]
#[derive(Debug)]
pub struct ScopedSpan;

#[cfg(not(feature = "trace"))]
impl ScopedSpan {
    /// Always 0.
    #[inline(always)]
    pub fn id(&self) -> u64 {
        0
    }

    /// Does nothing.
    #[inline(always)]
    pub fn cancel(self) {}
}

/// Does nothing; always true (so callers need not branch).
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn attach(_wall: &Wall, _index: usize) -> bool {
    true
}

/// Does nothing.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn detach() {}

/// Always 0.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn current_id() -> u64 {
    0
}

/// Does nothing; returns the no-op guard.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn span(_family: &'static str) -> ScopedSpan {
    ScopedSpan
}

/// Does nothing; returns the no-op guard.
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn span_with_parent(_family: &'static str, _parent: u64) -> ScopedSpan {
    ScopedSpan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_table_is_closed_and_unique() {
        for (i, f) in families::ALL.iter().enumerate() {
            assert_eq!(families::index_of(f), Some(i), "family {f}");
        }
        let mut sorted: Vec<&str> = families::ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), families::ALL.len(), "duplicate family");
        assert_eq!(families::index_of("not-registered"), None);
    }

    #[test]
    fn budget_verdicts() {
        let budget = WallBudget::default();
        let cheap = WallOverhead {
            record_ns: 1_000,
            merge_ns: 500,
            sample_ns: 500,
            ..WallOverhead::default()
        };
        assert!(budget.verdict(&cheap, 1_000_000).within);
        assert_eq!(cheap.total_ns(), 2_000);
        let dear = WallOverhead {
            record_ns: 500_000,
            ..WallOverhead::default()
        };
        let v = budget.verdict(&dear, 1_000_000);
        assert!(!v.within);
        assert!((v.fraction - 0.5).abs() < 1e-12);
        // Zero-length runs never fail the budget.
        assert!(budget.verdict(&dear, 0).within);
    }

    #[test]
    fn wall_matches_feature_mode() {
        let wall = Wall::with_threads(2);
        let t = wall.thread(0).expect("first claim");
        let outer = t.enter(families::SWEEP);
        let inner = t.enter(families::TASK);
        t.exit(inner);
        t.exit(outer);
        let snap = wall.snapshot();
        if Wall::ACTIVE {
            assert_eq!(snap.families.len(), families::ALL.len());
            assert_eq!(snap.epoch, 1);
            let sweep = snap.family(families::SWEEP).expect("sweep row");
            assert_eq!(sweep.count, 1);
            let task = snap.family(families::TASK).expect("task row");
            assert_eq!(task.count, 1);
            assert!(sweep.max_ns >= task.max_ns, "outer span covers inner");
            assert_eq!(snap.total_spans(), 2);
            // The second claim of the same slot must fail (SPSC).
            assert!(wall.thread(0).is_none(), "slot 0 already claimed");
            assert!(wall.thread(5).is_none(), "out of range");
            let o = wall.overhead();
            assert_eq!(o.spans, 2);
            assert_eq!(o.bytes, 2 * (SPAN_WORDS as u64) * 8);
            assert!(o.record_ns > 0);
            assert!(o.merges >= 1);
            // Both spans survive into the retained list with causality.
            let spans = wall.spans();
            assert_eq!(spans.len(), 2);
            let task_span = spans
                .iter()
                .find(|s| s.family == families::TASK)
                .expect("task span retained");
            let sweep_span = spans
                .iter()
                .find(|s| s.family == families::SWEEP)
                .expect("sweep span retained");
            assert_eq!(task_span.parent, sweep_span.id, "nesting sets parent");
            assert_eq!(sweep_span.parent, 0, "root has no parent");
        } else {
            assert_eq!(snap.families.len(), 0);
            assert_eq!(snap.epoch, 0);
            assert_eq!(wall.overhead(), WallOverhead::default());
            assert!(wall.budget_verdict().within);
            assert_eq!(std::mem::size_of::<Wall>(), 0);
            assert_eq!(std::mem::size_of::<WallThread>(), 0);
            assert_eq!(std::mem::size_of::<ScopedSpan>(), 0);
        }
    }

    #[test]
    fn unregistered_family_records_nothing() {
        let wall = Wall::with_threads(1);
        let t = wall.thread(0).expect("claim");
        assert_eq!(t.enter("not/registered"), 0);
        t.exit(0); // the returned 0 is a safe no-op
        assert_eq!(wall.snapshot().total_spans(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn full_ring_drops_and_counts() {
        let wall = Wall::new(1, 4);
        let t = wall.thread(0).expect("claim");
        for _ in 0..10 {
            let id = t.enter(families::RUN);
            t.exit(id);
        }
        let snap = wall.snapshot();
        let o = snap.overhead;
        assert_eq!(o.spans, 4, "ring holds 4");
        assert_eq!(o.dropped, 6);
        assert_eq!(o.spans + o.dropped, 10, "record conservation");
        assert_eq!(snap.family(families::RUN).expect("run row").count, 4);
        // After the drain the ring has room again.
        let id = t.enter(families::RUN);
        t.exit(id);
        let snap = wall.snapshot();
        assert_eq!(snap.family(families::RUN).expect("run row").count, 5);
        assert_eq!(snap.epoch, 2);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn cancel_discards_the_frame() {
        let wall = Wall::with_threads(1);
        let t = wall.thread(0).expect("claim");
        let id = t.enter(families::CLAIM);
        t.cancel(id);
        assert_eq!(t.current(), 0, "stack unwound");
        assert_eq!(wall.snapshot().total_spans(), 0, "nothing recorded");
        t.cancel(0); // no-op
    }

    #[cfg(feature = "trace")]
    #[test]
    fn live_stack_sampling_collapses() {
        let wall = Wall::with_threads(1);
        let t = wall.thread(0).expect("claim");
        let outer = t.enter(families::SWEEP);
        let inner = t.enter(families::TASK);
        assert_eq!(wall.sample_stacks(), 1);
        assert_eq!(wall.sample_stacks(), 1);
        t.exit(inner);
        assert_eq!(wall.sample_stacks(), 1, "outer frame still live");
        t.exit(outer);
        assert_eq!(wall.sample_stacks(), 0, "empty stacks are skipped");
        let snap = wall.snapshot();
        let deep = snap
            .collapsed
            .iter()
            .find(|s| s.stack == "sweep;runner/task")
            .expect("nested stack sampled");
        assert_eq!(deep.count, 2);
        let shallow = snap
            .collapsed
            .iter()
            .find(|s| s.stack == "sweep")
            .expect("outer-only stack sampled");
        assert_eq!(shallow.count, 1);
        assert!(snap.collapsed_text().contains("sweep;runner/task 2\n"));
        assert_eq!(snap.overhead.samples, 4);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn explicit_parent_crosses_threads() {
        let wall = Wall::with_threads(2);
        let driver = wall.thread(0).expect("claim 0");
        let root = driver.enter(families::SWEEP);
        let worker = wall.thread(1).expect("claim 1");
        let task = worker.enter_with_parent(families::TASK, root);
        worker.exit(task);
        driver.exit(root);
        let spans = wall.spans();
        let task_span = spans
            .iter()
            .find(|s| s.family == families::TASK)
            .expect("task retained");
        assert_eq!(task_span.parent, root);
        assert_eq!(task_span.thread, 1);
        // Ids from different threads never collide.
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), spans.len());
    }

    #[test]
    fn tls_spans_record_through_the_attached_context() {
        let wall = Wall::with_threads(1);
        assert!(attach(&wall, 0), "first attach claims the slot");
        {
            let outer = span(families::SWEEP);
            if Wall::ACTIVE {
                assert_ne!(outer.id(), 0);
                assert_eq!(current_id(), outer.id());
            }
            let inner = span(families::TASK);
            drop(inner);
            drop(outer);
        }
        // Cancelled guards record nothing.
        let ghost = span(families::CLAIM);
        ghost.cancel();
        detach();
        // Unattached: guards are inert.
        let idle = span(families::RUN);
        assert_eq!(idle.id(), 0);
        drop(idle);
        assert_eq!(current_id(), 0);
        let snap = wall.snapshot();
        if Wall::ACTIVE {
            assert_eq!(snap.total_spans(), 2, "sweep + task, no claim/run");
            assert_eq!(snap.family(families::CLAIM).expect("claim row").count, 0);
        } else {
            assert_eq!(snap.total_spans(), 0);
        }
    }

    #[test]
    fn snapshot_json_shape() {
        let wall = Wall::with_threads(1);
        let j = wall.snapshot().to_json();
        assert!(j.get("epoch").is_some());
        assert!(j.get("families").is_some());
        assert!(j.get("collapsed").is_some());
        assert!(j.get("overhead").is_some());
        assert!(j.get("total_spans").is_some());
    }

    #[cfg(feature = "trace")]
    #[cfg_attr(miri, ignore = "timed producer loops are too slow under miri")]
    #[test]
    fn concurrent_record_merge_and_sample() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let wall = Wall::with_threads(4);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for i in 0..4 {
                let t = wall.thread(i).expect("claim");
                let stop = &stop;
                scope.spawn(move || {
                    // A guaranteed floor of iterations first: the main
                    // thread's snapshot loop can finish before a slow
                    // spawn even starts, and the final conservation
                    // check needs spans to conserve.
                    let mut done = 0u32;
                    while done < 50 || !stop.load(Ordering::Relaxed) {
                        let outer = t.enter(families::TASK);
                        let inner = t.enter(families::RUN);
                        t.exit(inner);
                        t.exit(outer);
                        done += 1;
                    }
                });
            }
            for _ in 0..100 {
                let snap = wall.snapshot();
                for f in &snap.families {
                    assert!(f.p50_ns <= f.p99_ns && f.p99_ns <= f.p999_ns);
                    assert!(f.p999_ns <= f.max_ns.max(f.p999_ns));
                }
                let _ = wall.sample_stacks();
            }
            stop.store(true, Ordering::Relaxed);
        });
        let snap = wall.snapshot();
        let o = snap.overhead;
        // 4 producers x >= 50 iterations x 2 spans, and a slot can only
        // drop once 1024 records sit undrained — so all 400 floor spans
        // publish.
        assert!(o.spans >= 400);
        assert!(o.merges >= 101);
        assert!(o.samples >= 100);
        // Conservation after join: the final snapshot drained every
        // ring, so the histograms saw exactly the accepted records
        // (drops were counted, never silently lost).
        assert_eq!(snap.total_spans(), o.spans, "merged == accepted");
    }
}
