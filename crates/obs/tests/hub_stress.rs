//! Real-thread stress for the hub's SPSC rings: the model checker
//! (`tests/model_hub.rs`) proves the protocol on small bounded
//! executions; this test hammers the same invariants at scale on real
//! hardware, where actual weak-memory reordering and cache traffic
//! apply.
//!
//! N producers publish through deliberately tiny rings (so the
//! full-ring drop path runs constantly) while a merger snapshots
//! concurrently. Invariants: per-worker publish counts are conserved
//! as accepted + dropped, merged rows never show a torn beat, and
//! snapshot epochs are strictly monotone.

#![cfg(feature = "trace")]

use execmig_obs::model::thread;
use execmig_obs::{Beat, Hub, HubConfig, WorkerState};

const WORKERS: usize = 4;

/// Publishes per worker: enough to wrap the ring thousands of times on
/// real runs, scaled down under miri where every instruction is
/// interpreted.
fn publishes_per_worker() -> u64 {
    if cfg!(miri) {
        200
    } else {
        20_000
    }
}

fn beat(k: u64) -> Beat {
    Beat {
        state: WorkerState::Running,
        task: k,
        tasks_done: k,
        // Self-describing payload: every word derives from k, so a
        // torn mix of two beats is detectable in any single field pair.
        instructions: k * 3,
        l2_misses: k * 5,
        ..Beat::default()
    }
}

#[test]
fn producers_hammering_full_rings_conserve_counts() {
    let per_worker = publishes_per_worker();
    let hub = Hub::new(HubConfig {
        workers: WORKERS,
        ring_capacity: 2, // tiny: force the drop path constantly
        heartbeat_us: 1_000_000,
        stall_beats: 1_000,
    });
    let mut epochs_seen = 0u64;
    let mut last_epoch = 0u64;
    let mut floor = [0u64; WORKERS];
    thread::scope(|scope| {
        for w in 0..WORKERS {
            let hub = &hub;
            scope.spawn(move || {
                let handle = hub.worker(w).expect("one claimant per slot");
                for k in 1..=per_worker {
                    handle.publish(beat(k));
                }
                let mut done = beat(per_worker);
                done.state = WorkerState::Done;
                handle.publish(done);
            });
        }
        // Merge concurrently until every publish is accounted for,
        // checking coherence of each observed row. (The final Done
        // beat may itself drop on a full ring, so "all workers Done"
        // is not a sound break condition — conservation is.)
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        loop {
            let snap = hub.snapshot();
            assert!(
                snap.epoch > last_epoch,
                "snapshot epochs must be strictly monotone: {} after {}",
                snap.epoch,
                last_epoch
            );
            last_epoch = snap.epoch;
            epochs_seen += 1;
            let mut accounted = true;
            for row in &snap.workers {
                accounted &= row.beats + row.dropped == per_worker + 1;
                if row.beats == 0 {
                    continue;
                }
                // No torn beat: every field of the merged row must
                // come from one publish, i.e. one k.
                let k = row.task;
                assert!(k >= 1 && k <= per_worker, "task counter out of range: {k}");
                assert_eq!(row.tasks_done, k, "torn beat: tasks_done vs task");
                assert_eq!(row.instructions, k * 3, "torn beat: instructions");
                assert_eq!(row.l2_misses, k * 5, "torn beat: l2_misses");
                // Newest-wins merge only moves forward.
                assert!(
                    k >= floor[row.worker],
                    "merge went backwards on worker {}: {} after {}",
                    row.worker,
                    k,
                    floor[row.worker]
                );
                floor[row.worker] = k;
            }
            if accounted {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "publish counts never settled: {:?}",
                snap.workers
            );
        }
    });

    // Producers joined: counters are exact now. Conservation — every
    // publish was either accepted (and later merged) or counted as a
    // drop, per worker and in the aggregate.
    let snap = hub.snapshot();
    let o = &snap.overhead;
    let attempts = WORKERS as u64 * (per_worker + 1);
    assert_eq!(
        o.beats + o.dropped,
        attempts,
        "aggregate conservation: accepted + dropped == publishes"
    );
    let mut merged = 0u64;
    for row in &snap.workers {
        assert_eq!(
            row.beats + row.dropped,
            per_worker + 1,
            "worker {} conservation",
            row.worker
        );
        merged += row.beats;
    }
    assert_eq!(merged, o.beats, "merged beats account for every acceptance");
    assert!(
        o.dropped > 0,
        "a capacity-2 ring under {per_worker} publishes must have dropped"
    );
    assert!(epochs_seen >= 1);
    assert!(snap.epoch >= epochs_seen, "epoch bumped on every merge");
}
