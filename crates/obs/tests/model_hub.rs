//! Interleaving model checks for the hub's lock-free SPSC beat rings.
//!
//! Compiled only under `RUSTFLAGS="--cfg execmig_model"` (plus the
//! `trace` feature): the shim in `execmig_obs::model` then routes every
//! atomic through `execmig_model`'s bounded-DFS scheduler, so these
//! tests assert ring invariants across *every* bounded interleaving and
//! every stale value the memory model permits — not just the schedules
//! one lucky run happens to hit.
//!
//! The same file is the mutation gate: built with
//! `--cfg execmig_weak_head` (the ring's Release head bump weakened to
//! Relaxed) or `--cfg execmig_torn_slot` (one slot word stored after
//! the head bump), [`spsc_publish_snapshot_protocol`] must *fail* to
//! find a clean exploration — the checker has to produce a torn or
//! stale read. CI runs all three configurations.

#![cfg(all(execmig_model, feature = "trace"))]

use execmig_model::{try_explore, Config};
use execmig_obs::model::thread;
use execmig_obs::{Beat, Hub, HubConfig, HubSnapshot, WorkerState};

fn small_hub() -> Hub {
    Hub::new(HubConfig {
        workers: 1,
        ring_capacity: 2,
        heartbeat_us: 1_000_000,
        stall_beats: 1_000,
    })
}

fn beat(instructions: u64) -> Beat {
    Beat {
        state: WorkerState::Running,
        task: instructions / 10,
        instructions,
        ..Beat::default()
    }
}

/// A merged row must only ever show a beat that was actually published
/// whole: `instructions` is 10/20/30 once any beat merged, never a torn
/// mix of init zeros and half-landed words.
fn assert_untorn(snap: &HubSnapshot) -> u64 {
    let row = &snap.workers[0];
    if row.beats > 0 {
        assert!(
            matches!(row.instructions, 10 | 20 | 30),
            "torn beat: merged instructions {} not in {{10,20,30}} after {} beats",
            row.instructions,
            row.beats,
        );
        assert_eq!(row.state, WorkerState::Running, "torn beat: state word");
        assert_eq!(row.task, row.instructions / 10, "torn beat: task word");
    }
    row.instructions
}

/// The tentpole gate: one producer publishing three beats through a
/// capacity-2 ring while the main thread merges snapshots concurrently.
///
/// Clean orderings: no interleaving shows a torn beat, epochs are
/// monotone, and afterwards beats + drops conserve the publish count
/// exactly. Mutated orderings (`execmig_weak_head`/`execmig_torn_slot`):
/// the exploration MUST detect a violation.
#[test]
fn spsc_publish_snapshot_protocol() {
    let result = try_explore(Config::default(), || {
        let hub = small_hub();
        let producer_hub = hub.clone();
        let producer = thread::spawn(move || {
            let w = producer_hub.worker(0).expect("first claim wins");
            w.publish(beat(10));
            w.publish(beat(20));
            w.publish(beat(30));
        });

        // Concurrent merges: racing the producer, every observed row
        // must still be a whole published beat.
        let s1 = hub.snapshot();
        let i1 = assert_untorn(&s1);
        let s2 = hub.snapshot();
        let i2 = assert_untorn(&s2);
        assert!(s2.epoch > s1.epoch, "snapshot epochs must be monotone");
        assert!(i2 >= i1, "newest-wins merge went backwards: {i1} -> {i2}");

        producer.join().expect("producer");

        // Joined: the counters are exact. Every publish either landed
        // in the ring or was counted as a drop — conservation.
        let fin = hub.snapshot();
        let row = &fin.workers[0];
        let o = &fin.overhead;
        assert_eq!(o.beats + o.dropped, 3, "publish conservation");
        assert_eq!(row.beats, o.beats, "merged beats == accepted beats");
        assert_eq!(row.dropped, o.dropped);
        // Capacity 2, three publishes: at most the last beat dropped,
        // and the newest *accepted* beat is what the merge retains.
        assert!(o.dropped <= 1, "at most one drop is possible");
        let newest = if o.dropped == 1 { 20 } else { 30 };
        assert_eq!(row.instructions, newest, "newest-wins merge");
        assert_eq!(fin.epoch, 3);
    });

    #[cfg(not(any(execmig_weak_head, execmig_torn_slot)))]
    {
        let report = result.expect("correct orderings: no violation in any bounded interleaving");
        assert!(
            report.executions > 1,
            "the exploration must actually branch"
        );
    }
    #[cfg(any(execmig_weak_head, execmig_torn_slot))]
    {
        let v = result.expect_err(
            "mutation gate: a weakened Release head bump / reordered slot store \
             must surface as a detected torn or stale read",
        );
        eprintln!("mutation detected, as required:\n{v}");
    }
}

/// Worker-slot claiming is exclusive under every interleaving: two
/// racing claimants, exactly one wins.
#[cfg(not(any(execmig_weak_head, execmig_torn_slot)))]
#[test]
fn worker_claim_is_exclusive() {
    execmig_model::explore(|| {
        let hub = small_hub();
        let rival_hub = hub.clone();
        let rival = thread::spawn(move || rival_hub.worker(0).is_some());
        let mine = hub.worker(0).is_some();
        let theirs = rival.join().expect("rival");
        assert!(
            mine ^ theirs,
            "exactly one claimant may win slot 0 (mine={mine}, theirs={theirs})"
        );
    });
}

/// Drop accounting is exact when publisher and merger are sequenced:
/// four publishes into a capacity-2 ring with no intervening drain is
/// exactly two accepted and two counted drops. (Single-threaded, so it
/// holds under the mutation cfgs too — coherence forces a thread to
/// see its own stores.)
#[test]
fn full_ring_drops_exactly_counted() {
    execmig_model::explore(|| {
        let hub = small_hub();
        let w = hub.worker(0).expect("claim");
        for i in 1..=4 {
            w.publish(beat(i * 10));
        }
        let snap = hub.snapshot();
        let row = &snap.workers[0];
        assert_eq!(snap.overhead.beats, 2, "capacity-2 ring accepts two");
        assert_eq!(snap.overhead.dropped, 2, "and counts the other two");
        assert_eq!(row.instructions, 20, "newest accepted beat");
        // HubOverhead conservation: accepted + dropped == attempts,
        // and bytes ride only on accepted beats.
        assert_eq!(snap.overhead.beats + snap.overhead.dropped, 4);
        assert_eq!(snap.overhead.bytes, snap.overhead.beats * 12 * 8);
    });
}
