//! Interleaving model checks for the wall flight recorder's span SPSC
//! rings.
//!
//! Compiled only under `RUSTFLAGS="--cfg execmig_model"` (plus the
//! `trace` feature): the shim in `execmig_obs::model` routes the wall's
//! atomics through `execmig_model`'s bounded-DFS scheduler, so these
//! tests assert the ring protocol — untorn records, exact drop
//! accounting, exclusive slot claims — across *every* bounded
//! interleaving, not just lucky schedules. Span *durations* are real
//! `Instant` time and therefore nondeterministic under the checker;
//! only structural invariants are asserted.
//!
//! The same file is the mutation gate: built with
//! `--cfg execmig_wall_weak_head` (the producer's Release head bump in
//! `exit()` weakened to Relaxed), [`span_ring_publish_snapshot_protocol`]
//! must *fail* to find a clean exploration — the drain's sequence and
//! family debug-asserts have to catch a torn or stale record. CI runs
//! both configurations.

#![cfg(all(execmig_model, feature = "trace"))]

use execmig_model::{try_explore, Config};
use execmig_obs::model::thread;
use execmig_obs::wall::{families, Wall, WallSnapshot};

/// Every family row must be structurally sane whenever it is observed
/// mid-race: counts only for registered families, quantiles monotone,
/// totals nonzero only where counts are.
fn assert_untorn(snap: &WallSnapshot) -> u64 {
    for f in &snap.families {
        assert!(
            f.p50_ns <= f.p99_ns && f.p99_ns <= f.p999_ns,
            "torn aggregate: quantiles not monotone for {}",
            f.family
        );
        if f.count == 0 {
            assert_eq!(f.total_ns, 0, "torn aggregate: total without samples");
        }
    }
    snap.total_spans()
}

/// The tentpole gate: one producer closing three spans through a
/// capacity-2 ring while the main thread drains snapshots concurrently.
///
/// Clean orderings: every drained record passes the drain's sequence /
/// family / nonzero-id debug-asserts, epochs are monotone, and after
/// the join published + dropped conserves the exit count exactly, with
/// the histograms holding precisely the accepted records. Mutated
/// ordering (`execmig_wall_weak_head`): the exploration MUST detect a
/// violation.
#[test]
fn span_ring_publish_snapshot_protocol() {
    let result = try_explore(Config::default(), || {
        let wall = Wall::new(1, 2);
        let t = wall.thread(0).expect("first claim wins");
        let producer = thread::spawn(move || {
            for _ in 0..3 {
                let id = t.enter(families::TASK);
                assert_ne!(id, 0, "registered family yields a span id");
                t.exit(id);
            }
        });

        // Concurrent drains racing the producer: the drain itself
        // debug-asserts each record's sequence word, family index and
        // nonzero id — a torn read under a weakened head bump panics
        // here.
        let s1 = wall.snapshot();
        let n1 = assert_untorn(&s1);
        let s2 = wall.snapshot();
        let n2 = assert_untorn(&s2);
        assert!(s2.epoch > s1.epoch, "snapshot epochs must be monotone");
        assert!(n2 >= n1, "drained span count went backwards: {n1} -> {n2}");

        producer.join().expect("producer");

        // Joined: conservation. Every exit either published into the
        // ring (and the final drain merged it) or was counted as a
        // drop — never silently lost.
        let fin = wall.snapshot();
        let o = &fin.overhead;
        assert_eq!(o.spans + o.dropped, 3, "exit conservation");
        assert_eq!(fin.total_spans(), o.spans, "merged == accepted");
        let task = fin.family(families::TASK).expect("registered family");
        assert_eq!(task.count, o.spans, "all spans are task spans");
        assert!(fin.epoch >= 3);
    });

    #[cfg(not(execmig_wall_weak_head))]
    {
        let report = result.expect("correct orderings: no violation in any bounded interleaving");
        assert!(
            report.executions > 1,
            "the exploration must actually branch"
        );
    }
    #[cfg(execmig_wall_weak_head)]
    {
        let v = result.expect_err(
            "mutation gate: a Relaxed head bump must surface as a torn or stale \
             record in the drain's sequence/family/id asserts",
        );
        eprintln!("mutation detected, as required:\n{v}");
    }
}

/// Thread-slot claiming is exclusive under every interleaving: two
/// racing claimants, exactly one wins (the ring stays SPSC).
#[cfg(not(execmig_wall_weak_head))]
#[test]
fn wall_slot_claim_is_exclusive() {
    execmig_model::explore(|| {
        let wall = Wall::new(1, 2);
        let rival_wall = wall.clone();
        let rival = thread::spawn(move || rival_wall.thread(0).is_some());
        let mine = wall.thread(0).is_some();
        let theirs = rival.join().expect("rival");
        assert!(
            mine ^ theirs,
            "exactly one claimant may win slot 0 (mine={mine}, theirs={theirs})"
        );
    });
}

/// Drop accounting is exact when producer and drain are sequenced:
/// four closed spans into a capacity-2 ring with no intervening drain
/// is exactly two accepted and two counted drops. (Single-threaded, so
/// it holds under the mutation cfg too — coherence forces a thread to
/// see its own stores.)
#[test]
fn full_span_ring_drops_exactly_counted() {
    execmig_model::explore(|| {
        let wall = Wall::new(1, 2);
        let t = wall.thread(0).expect("claim");
        for _ in 0..4 {
            let id = t.enter(families::RUN);
            t.exit(id);
        }
        let snap = wall.snapshot();
        let o = &snap.overhead;
        assert_eq!(o.spans, 2, "capacity-2 ring accepts two");
        assert_eq!(o.dropped, 2, "and counts the other two");
        assert_eq!(o.spans + o.dropped, 4, "exit conservation");
        assert_eq!(snap.total_spans(), 2, "histograms hold the accepted spans");
        assert_eq!(
            snap.family(families::RUN).map(|f| f.count),
            Some(2),
            "both accepted spans aggregate under their family"
        );
    });
}
