//! Connection-cap behaviour of the telemetry server: a burst of idle
//! keep-alive connections may pin at most `max_connections` handler
//! threads; everything past the cap is answered `503` and closed
//! without spawning, and slots free up once a pinned connection goes
//! away.

#![cfg(not(miri))] // real TCP sockets

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use execmig_obs::{Hub, Registry, TelemetryServer};

fn start_capped(limit: usize) -> TelemetryServer {
    TelemetryServer::start_with_limit(
        ("127.0.0.1", 0),
        Hub::with_workers(1),
        std::sync::Arc::new(Registry::new),
        limit,
    )
    .expect("bind ephemeral port")
}

/// Sends one keep-alive request and reads the full response, leaving
/// the connection open (and its handler thread pinned, idle).
fn open_idle_keepalive(addr: SocketAddr) -> (TcpStream, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n")
        .expect("request");
    let response = read_one_response(&mut stream);
    (stream, response)
}

/// Reads one `Content-Length`-framed HTTP response.
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(head_end) = find(&buf, b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let body_len = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse::<usize>().ok())?
                })
                .expect("framed response");
            while buf.len() < head_end + 4 + body_len {
                let n = stream.read(&mut chunk).expect("body read");
                assert!(n > 0, "connection closed mid-body");
                buf.extend_from_slice(&chunk[..n]);
            }
            return String::from_utf8_lossy(&buf).to_string();
        }
        match stream.read(&mut chunk) {
            Ok(0) => panic!(
                "connection closed before a full response: {:?}",
                String::from_utf8_lossy(&buf)
            ),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read error: {e}"),
        }
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[test]
fn burst_of_idle_keepalives_hits_the_cap_then_recovers() {
    let limit = 3;
    let server = start_capped(limit);
    let addr = server.local_addr();

    // Fill the cap with idle keep-alive connections. Each has answered
    // one request, so its handler thread is provably alive and pinned.
    let mut pinned: Vec<(TcpStream, String)> =
        (0..limit).map(|_| open_idle_keepalive(addr)).collect();
    for (_, response) in &pinned {
        assert!(
            response.starts_with("HTTP/1.1 200"),
            "under the cap every connection is served: {response:?}"
        );
    }

    // Over the cap: the accept loop answers 503 without spawning a
    // handler. Retry briefly — the permits of the burst above are
    // taken on accept, which races this connect by a poll interval.
    let deadline = Instant::now() + Duration::from_secs(5);
    let over = loop {
        let mut stream = TcpStream::connect(addr).expect("connect over cap");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("request");
        let response = read_one_response(&mut stream);
        if response.starts_with("HTTP/1.1 503") || Instant::now() > deadline {
            break response;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        over.starts_with("HTTP/1.1 503"),
        "over-cap connection must get 503: {over:?}"
    );
    assert!(
        over.contains("connection capacity"),
        "503 body names the reason: {over:?}"
    );
    assert!(
        over.contains("Connection: close"),
        "over-cap connections are closed, not kept alive: {over:?}"
    );

    // Release one pinned connection (the others stay open); its permit
    // frees and a newcomer is served again once the handler notices the
    // close on its next read.
    drop(pinned.pop());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut stream = TcpStream::connect(addr).expect("reconnect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("request");
        let response = read_one_response(&mut stream);
        if response.starts_with("HTTP/1.1 200") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slot never freed after closing a pinned connection: {response:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}

#[test]
fn under_the_cap_concurrent_connections_all_serve() {
    let server = start_capped(8);
    let addr = server.local_addr();
    let conns: Vec<(TcpStream, String)> = (0..4).map(|_| open_idle_keepalive(addr)).collect();
    for (_, response) in &conns {
        assert!(response.starts_with("HTTP/1.1 200"), "{response:?}");
        assert!(response.contains("Connection: keep-alive"), "{response:?}");
    }
    // Keep-alive connections answer a second request on the same
    // socket.
    for (mut stream, _) in conns {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("second request");
        let response = read_one_response(&mut stream);
        assert!(response.starts_with("HTTP/1.1 200"), "{response:?}");
    }
    server.shutdown();
}
