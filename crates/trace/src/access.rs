//! Memory accesses emitted by workloads.

use crate::addr::Addr;
use std::fmt;

/// The kind of a memory access.
///
/// The paper's machine model distinguishes instruction fetches (served by
/// the IL1), loads and stores (served by the write-through,
/// non-write-allocate DL1). The LRU-stack experiment of §4.1 "does not
/// distinguish between loads and stores", which downstream code expresses
/// with [`AccessKind::is_data`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch.
    IFetch,
    /// Data read.
    Load,
    /// Data write.
    Store,
}

impl AccessKind {
    /// True for loads and stores.
    ///
    /// ```
    /// use execmig_trace::AccessKind;
    /// assert!(AccessKind::Load.is_data());
    /// assert!(AccessKind::Store.is_data());
    /// assert!(!AccessKind::IFetch.is_data());
    /// ```
    pub const fn is_data(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Store)
    }

    /// True for stores.
    pub const fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::IFetch => "ifetch",
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        };
        f.write_str(s)
    }
}

/// One memory access: a kind, a byte address, and whether it is a
/// *pointer load* (a load whose result is itself dereferenced —
/// linked-data-structure traversal). §6 suggests restricting migration
/// triggers to pointer loads, whose L2 misses are the expensive ones.
///
/// ```
/// use execmig_trace::{Access, AccessKind, Addr};
/// let a = Access::load(Addr::new(0x40));
/// assert_eq!(a.kind, AccessKind::Load);
/// assert_eq!(a.addr.raw(), 0x40);
/// assert!(!a.pointer);
/// assert!(Access::pointer_load(Addr::new(0x40)).pointer);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// What the access does.
    pub kind: AccessKind,
    /// The byte address accessed.
    pub addr: Addr,
    /// True for pointer loads (linked-data-structure traversal).
    pub pointer: bool,
}

impl Access {
    /// Creates an access (not a pointer load).
    pub const fn new(kind: AccessKind, addr: Addr) -> Self {
        Access {
            kind,
            addr,
            pointer: false,
        }
    }

    /// Creates an instruction fetch.
    pub const fn ifetch(addr: Addr) -> Self {
        Access::new(AccessKind::IFetch, addr)
    }

    /// Creates a load.
    pub const fn load(addr: Addr) -> Self {
        Access::new(AccessKind::Load, addr)
    }

    /// Creates a pointer load.
    pub const fn pointer_load(addr: Addr) -> Self {
        Access {
            kind: AccessKind::Load,
            addr,
            pointer: true,
        }
    }

    /// Creates a store.
    pub const fn store(addr: Addr) -> Self {
        Access::new(AccessKind::Store, addr)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Access::ifetch(Addr::new(1)).kind, AccessKind::IFetch);
        assert_eq!(Access::load(Addr::new(1)).kind, AccessKind::Load);
        assert_eq!(Access::store(Addr::new(1)).kind, AccessKind::Store);
    }

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Store.is_store());
        assert!(!AccessKind::Load.is_store());
        assert!(!AccessKind::IFetch.is_data());
    }

    #[test]
    fn display() {
        assert_eq!(Access::load(Addr::new(0x80)).to_string(), "load 0x80");
        assert_eq!(Access::ifetch(Addr::new(0)).to_string(), "ifetch 0x0");
    }
}
