//! Byte and cache-line addressing.
//!
//! The paper works with 64-byte cache lines throughout (§4.1), and studies
//! the sensitivity to larger lines at the end of §4.1. Addresses in this
//! crate are plain 64-bit byte addresses; [`LineSize`] converts them to
//! line addresses.

use std::fmt;

/// A 64-bit byte address in the simulated address space.
///
/// ```
/// use execmig_trace::Addr;
/// let a = Addr::new(0x1234);
/// assert_eq!(a.raw(), 0x1234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Wraps a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The address `bytes` bytes after `self` (wrapping).
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line address: a byte address shifted right by the line-size
/// log2. Two byte addresses within the same line map to the same
/// `LineAddr`.
///
/// ```
/// use execmig_trace::{Addr, LineAddr, LineSize};
/// let ls = LineSize::new(64).unwrap();
/// assert_eq!(ls.line_of(Addr::new(64)), ls.line_of(Addr::new(127)));
/// assert_ne!(ls.line_of(Addr::new(64)), ls.line_of(Addr::new(128)));
/// assert_eq!(ls.line_of(Addr::new(128)), LineAddr::new(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Wraps a raw line number.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// The raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

impl From<LineAddr> for u64 {
    fn from(a: LineAddr) -> u64 {
        a.0
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A power-of-two cache-line size in bytes.
///
/// ```
/// use execmig_trace::LineSize;
/// let ls = LineSize::new(64).unwrap();
/// assert_eq!(ls.bytes(), 64);
/// assert_eq!(ls.log2(), 6);
/// assert!(LineSize::new(48).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineSize {
    log2: u32,
}

impl LineSize {
    /// The paper's line size: 64 bytes.
    pub const DEFAULT: LineSize = LineSize { log2: 6 };

    /// Creates a line size. Returns `None` unless `bytes` is a power of
    /// two in `[8, 4096]`.
    pub fn new(bytes: u64) -> Option<Self> {
        if bytes.is_power_of_two() && (8..=4096).contains(&bytes) {
            Some(LineSize {
                log2: bytes.trailing_zeros(),
            })
        } else {
            None
        }
    }

    /// The line size in bytes.
    pub const fn bytes(self) -> u64 {
        1 << self.log2
    }

    /// log2 of the line size.
    pub const fn log2(self) -> u32 {
        self.log2
    }

    /// The line containing byte address `addr`.
    pub const fn line_of(self, addr: Addr) -> LineAddr {
        LineAddr(addr.raw() >> self.log2)
    }

    /// The first byte address of `line`.
    pub const fn base_of(self, line: LineAddr) -> Addr {
        Addr(line.raw() << self.log2)
    }

    /// Number of lines needed to hold `bytes` bytes (rounded up).
    pub const fn lines_for(self, bytes: u64) -> u64 {
        bytes.div_ceil(1 << self.log2)
    }
}

impl Default for LineSize {
    fn default() -> Self {
        LineSize::DEFAULT
    }
}

impl fmt::Display for LineSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrip() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(u64::from(a), 0xdead_beef);
        assert_eq!(Addr::from(42u64), Addr::new(42));
    }

    #[test]
    fn addr_offset_wraps() {
        let a = Addr::new(u64::MAX);
        assert_eq!(a.offset(1), Addr::new(0));
    }

    #[test]
    fn line_size_rejects_non_pow2() {
        assert!(LineSize::new(0).is_none());
        assert!(LineSize::new(3).is_none());
        assert!(LineSize::new(96).is_none());
        assert!(LineSize::new(8192).is_none());
        assert!(LineSize::new(4).is_none());
    }

    #[test]
    fn line_size_accepts_pow2_range() {
        for b in [8u64, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
            let ls = LineSize::new(b).unwrap();
            assert_eq!(ls.bytes(), b);
        }
    }

    #[test]
    fn default_is_64_bytes() {
        assert_eq!(LineSize::default().bytes(), 64);
        assert_eq!(LineSize::DEFAULT.log2(), 6);
    }

    #[test]
    fn line_of_and_base_of() {
        let ls = LineSize::new(128).unwrap();
        let line = ls.line_of(Addr::new(1000));
        assert_eq!(line, LineAddr::new(7));
        assert_eq!(ls.base_of(line), Addr::new(896));
    }

    #[test]
    fn lines_for_rounds_up() {
        let ls = LineSize::DEFAULT;
        assert_eq!(ls.lines_for(0), 0);
        assert_eq!(ls.lines_for(1), 1);
        assert_eq!(ls.lines_for(64), 1);
        assert_eq!(ls.lines_for(65), 2);
        assert_eq!(ls.lines_for(1 << 20), 1 << 14);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(LineAddr::new(16).to_string(), "L0x10");
        assert_eq!(LineSize::DEFAULT.to_string(), "64B");
    }
}
