//! The abstract working-set behaviours of §3.3.
//!
//! These streams reference *elements*, not byte addresses; element `e` is
//! mapped to byte address `e * 64` so that, with the default 64-byte line
//! size, element numbers and line numbers coincide — exactly the setting
//! of Figure 3.

use crate::access::Access;
use crate::addr::Addr;
use crate::rng::Rng;
use crate::workload::Workload;

/// The `Circular` behaviour: the infinite stream
/// `0, 1, …, N-1, 0, 1, …, N-1, …`.
///
/// §3.3: "Circular is an important case, as many applications exhibit this
/// kind of working-set behavior, especially after filtering by a L1
/// cache."
///
/// ```
/// use execmig_trace::gen::CircularWorkload;
/// use execmig_trace::Workload;
/// let mut w = CircularWorkload::new(4);
/// let lines: Vec<u64> = (0..6).map(|_| w.next_access().addr.raw() / 64).collect();
/// assert_eq!(lines, [0, 1, 2, 3, 0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct CircularWorkload {
    n: u64,
    pos: u64,
    instr: u64,
}

impl CircularWorkload {
    /// Creates a circular stream over `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "working set must be non-empty");
        CircularWorkload {
            n,
            pos: 0,
            instr: 0,
        }
    }

    /// The working-set size in elements.
    pub fn working_set(&self) -> u64 {
        self.n
    }
}

impl Workload for CircularWorkload {
    fn name(&self) -> &str {
        "circular"
    }

    fn next_access(&mut self) -> Access {
        let e = self.pos;
        self.pos = (self.pos + 1) % self.n;
        self.instr += 1;
        Access::load(Addr::new(e * 64))
    }

    fn instructions(&self) -> u64 {
        self.instr
    }
}

/// The `HalfRandom(m)` behaviour: `m` random elements drawn from the lower
/// half `[0, N/2)`, then `m` from the upper half `[N/2, N)`, alternating
/// forever (§3.3).
///
/// ```
/// use execmig_trace::gen::HalfRandomWorkload;
/// use execmig_trace::Workload;
/// let mut w = HalfRandomWorkload::new(4000, 300, 1);
/// for i in 0..1200 {
///     let e = w.next_access().addr.raw() / 64;
///     let lower = (i / 300) % 2 == 0;
///     assert_eq!(e < 2000, lower, "element {e} at step {i}");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct HalfRandomWorkload {
    n: u64,
    m: u64,
    in_burst: u64,
    upper: bool,
    rng: Rng,
    instr: u64,
}

impl HalfRandomWorkload {
    /// Creates a `HalfRandom(m)` stream over `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `m == 0`.
    pub fn new(n: u64, m: u64, seed: u64) -> Self {
        assert!(n >= 2, "need at least two elements");
        assert!(m > 0, "burst length must be positive");
        HalfRandomWorkload {
            n,
            m,
            in_burst: 0,
            upper: false,
            rng: Rng::seed_from(seed),
            instr: 0,
        }
    }

    /// The working-set size in elements.
    pub fn working_set(&self) -> u64 {
        self.n
    }

    /// The burst length `m`.
    pub fn burst(&self) -> u64 {
        self.m
    }
}

impl Workload for HalfRandomWorkload {
    fn name(&self) -> &str {
        "half_random"
    }

    fn next_access(&mut self) -> Access {
        if self.in_burst == self.m {
            self.in_burst = 0;
            self.upper = !self.upper;
        }
        self.in_burst += 1;
        let half = self.n / 2;
        let e = if self.upper {
            self.rng.range(half, self.n)
        } else {
            self.rng.below(half)
        };
        self.instr += 1;
        Access::load(Addr::new(e * 64))
    }

    fn instructions(&self) -> u64 {
        self.instr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circular_wraps() {
        let mut w = CircularWorkload::new(3);
        let es: Vec<u64> = (0..7).map(|_| w.next_access().addr.raw() / 64).collect();
        assert_eq!(es, [0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(w.instructions(), 7);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn circular_rejects_empty() {
        CircularWorkload::new(0);
    }

    #[test]
    fn half_random_alternates_halves() {
        let n = 1000;
        let m = 50;
        let mut w = HalfRandomWorkload::new(n, m, 7);
        for burst in 0..10 {
            for _ in 0..m {
                let e = w.next_access().addr.raw() / 64;
                assert!(e < n);
                if burst % 2 == 0 {
                    assert!(e < n / 2, "burst {burst}: {e} should be in lower half");
                } else {
                    assert!(e >= n / 2, "burst {burst}: {e} should be in upper half");
                }
            }
        }
    }

    #[test]
    fn half_random_deterministic() {
        let mut a = HalfRandomWorkload::new(4000, 300, 42);
        let mut b = HalfRandomWorkload::new(4000, 300, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn half_random_covers_both_halves() {
        let mut w = HalfRandomWorkload::new(100, 10, 3);
        let mut low = false;
        let mut high = false;
        for _ in 0..100 {
            let e = w.next_access().addr.raw() / 64;
            if e < 50 {
                low = true;
            } else {
                high = true;
            }
        }
        assert!(low && high);
    }
}
