//! Instruction-fetch modelling.
//!
//! Two code models are provided:
//!
//! - a *tiny loop* used by data-dominated benchmarks (their code fits the
//!   16 KB IL1, matching the ≈0 IL1 miss counts of Table 1), and
//! - a *code walk* over a large footprint of functions with limited loop
//!   reuse, used by the code-heavy benchmarks (gcc, crafty, vortex whose
//!   IL1 miss densities rival or exceed their DL1 densities).
//!
//! [`CodeFeed`] converts retired-instruction counts into a stream of
//! instruction-fetch accesses at cache-line granularity: one `IFetch`
//! access per code line entered, assuming 8 instructions per 64-byte line
//! (PISA instructions are 8 bytes).

use crate::access::Access;
use crate::addr::Addr;
use crate::rng::Rng;
use crate::workload::{InstrBudget, Workload};

use super::hot_random::{HotRandomParams, HotRandomWorkload};
use super::CODE_BASE;

/// Instructions per 64-byte code line (8-byte PISA instructions).
const INSTRS_PER_LINE: u64 = 8;

/// Parameters of the large-footprint code walk.
#[derive(Debug, Clone)]
pub struct CodeWalkParams {
    /// Total code footprint in bytes.
    pub footprint_bytes: u64,
    /// Mean function length in code lines.
    pub func_lines_mean: u64,
    /// Fraction (per-mille) of control transfers that go to the hot
    /// subset of functions.
    pub hot_permille: u64,
    /// Size of the hot subset, as a per-mille fraction of all functions.
    pub hot_set_permille: u64,
    /// Mean number of times a function body re-executes before moving on
    /// (loop reuse). 1 means straight-line execution.
    pub loop_repeat_mean: u64,
}

impl Default for CodeWalkParams {
    fn default() -> Self {
        CodeWalkParams {
            footprint_bytes: 1 << 20,
            func_lines_mean: 12,
            hot_permille: 800,
            hot_set_permille: 100,
            loop_repeat_mean: 2,
        }
    }
}

#[derive(Debug, Clone)]
enum CodeModel {
    /// Sequential loop over `lines` lines starting at `CODE_BASE`.
    TinyLoop { lines: u64, pos: u64 },
    /// Function-granular walk over a large footprint.
    Walk {
        /// (start line, length in lines) per function.
        funcs: Vec<(u64, u64)>,
        hot_count: usize,
        params: CodeWalkParams,
        current: usize,
        pos: u64,
        repeats_left: u64,
        rng: Rng,
    },
}

/// Converts instruction counts into `IFetch` accesses.
#[derive(Debug, Clone)]
pub struct CodeFeed {
    model: CodeModel,
    credit: u64,
}

impl CodeFeed {
    /// A small loop of `lines` code lines; never misses a 16 KB IL1 once
    /// warm (keep `lines` ≤ 256).
    pub fn tiny_loop(lines: u64) -> Self {
        assert!(lines > 0, "loop must have at least one line");
        CodeFeed {
            model: CodeModel::TinyLoop { lines, pos: 0 },
            credit: 0,
        }
    }

    /// A large-footprint code walk.
    pub fn walk(params: CodeWalkParams, rng: &mut Rng) -> Self {
        assert!(params.footprint_bytes >= 64, "footprint must hold a line");
        assert!(params.func_lines_mean > 0);
        let total_lines = params.footprint_bytes / 64;
        let mut layout_rng = rng.fork(0xc0de);
        let mut funcs = Vec::new();
        let mut at = 0u64;
        while at < total_lines {
            let len = layout_rng
                .range(1, params.func_lines_mean * 2 + 1)
                .min(total_lines - at);
            funcs.push((at, len));
            at += len;
        }
        let hot_count = ((funcs.len() as u64 * params.hot_set_permille) / 1000).max(1) as usize;
        let walk_rng = rng.fork(0xc0de + 1);
        CodeFeed {
            model: CodeModel::Walk {
                funcs,
                hot_count,
                params,
                current: 0,
                pos: 0,
                repeats_left: 0,
                rng: walk_rng,
            },
            credit: 0,
        }
    }

    /// Credits `instrs` retired instructions toward future fetches.
    pub fn charge(&mut self, instrs: u64) {
        self.credit += instrs;
    }

    /// Returns the next pending instruction fetch, if the credited
    /// instructions have crossed into a new code line.
    pub fn next_ifetch(&mut self) -> Option<Access> {
        if self.credit < INSTRS_PER_LINE {
            return None;
        }
        self.credit -= INSTRS_PER_LINE;
        let line = match &mut self.model {
            CodeModel::TinyLoop { lines, pos } => {
                let l = *pos;
                // `pos < lines` always, so a compare replaces the
                // modulo — this runs once per code line entered.
                *pos += 1;
                if *pos == *lines {
                    *pos = 0;
                }
                l
            }
            CodeModel::Walk {
                funcs,
                hot_count,
                params,
                current,
                pos,
                repeats_left,
                rng,
            } => {
                let (start, len) = funcs[*current];
                let l = start + *pos;
                *pos += 1;
                if *pos >= len {
                    *pos = 0;
                    if *repeats_left > 0 {
                        *repeats_left -= 1;
                    } else {
                        // Move to another function.
                        *current = if rng.chance(params.hot_permille, 1000) {
                            rng.below(*hot_count as u64) as usize
                        } else {
                            rng.below(funcs.len() as u64) as usize
                        };
                        *repeats_left = rng.burst_len(params.loop_repeat_mean) - 1;
                    }
                }
                l
            }
        };
        Some(Access::ifetch(Addr::new(CODE_BASE + line * 64)))
    }
}

/// Parameters of a code-heavy benchmark model: a big code walk plus a
/// data side modelled by [`HotRandomWorkload`].
#[derive(Debug, Clone)]
pub struct CodeHeavyParams {
    /// Stable benchmark name.
    pub name: &'static str,
    /// The instruction-side walk.
    pub code: CodeWalkParams,
    /// The data side.
    pub data: HotRandomParams,
    /// RNG seed.
    pub seed: u64,
}

/// A benchmark dominated by its instruction footprint (gcc, crafty,
/// vortex in Table 1).
#[derive(Debug, Clone)]
pub struct CodeHeavyWorkload {
    name: &'static str,
    code: CodeFeed,
    data: HotRandomWorkload,
    budget: InstrBudget,
}

impl CodeHeavyWorkload {
    /// Builds the workload from its parameters.
    pub fn new(params: CodeHeavyParams) -> Self {
        let mut rng = Rng::seed_from(params.seed);
        let code = CodeFeed::walk(params.code, &mut rng);
        let instr_x256 = params.data.instr_per_access_x256;
        let data = HotRandomWorkload::new(params.name, params.data, rng.fork(1));
        CodeHeavyWorkload {
            name: params.name,
            code,
            data,
            budget: InstrBudget::new(instr_x256),
        }
    }
}

impl Workload for CodeHeavyWorkload {
    fn name(&self) -> &str {
        self.name
    }

    fn next_access(&mut self) -> Access {
        if let Some(f) = self.code.next_ifetch() {
            return f;
        }
        let a = self.data.next_access();
        let instrs = self.budget.step();
        self.code.charge(instrs);
        a
    }

    fn instructions(&self) -> u64 {
        self.budget.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;

    #[test]
    fn tiny_loop_cycles_over_small_set() {
        let mut feed = CodeFeed::tiny_loop(4);
        feed.charge(INSTRS_PER_LINE * 10);
        let mut lines = Vec::new();
        while let Some(a) = feed.next_ifetch() {
            lines.push((a.addr.raw() - CODE_BASE) / 64);
        }
        assert_eq!(lines, [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn feed_emits_one_fetch_per_code_line() {
        let mut feed = CodeFeed::tiny_loop(16);
        feed.charge(7);
        assert!(feed.next_ifetch().is_none(), "7 instrs < one line");
        feed.charge(1);
        assert!(feed.next_ifetch().is_some());
        assert!(feed.next_ifetch().is_none());
    }

    #[test]
    fn walk_stays_in_footprint() {
        let params = CodeWalkParams {
            footprint_bytes: 1 << 16,
            ..CodeWalkParams::default()
        };
        let mut rng = Rng::seed_from(5);
        let mut feed = CodeFeed::walk(params, &mut rng);
        feed.charge(100_000 * INSTRS_PER_LINE);
        let mut n = 0;
        while let Some(a) = feed.next_ifetch() {
            let line = (a.addr.raw() - CODE_BASE) / 64;
            assert!(line < (1 << 16) / 64);
            n += 1;
        }
        assert_eq!(n, 100_000);
    }

    #[test]
    fn walk_visits_many_distinct_lines() {
        let params = CodeWalkParams {
            footprint_bytes: 1 << 20,
            ..CodeWalkParams::default()
        };
        let mut rng = Rng::seed_from(6);
        let mut feed = CodeFeed::walk(params, &mut rng);
        feed.charge(200_000 * INSTRS_PER_LINE);
        let mut seen = std::collections::HashSet::new();
        while let Some(a) = feed.next_ifetch() {
            seen.insert(a.addr.raw());
        }
        // Footprint is 16k lines; a code-heavy walk should touch most.
        assert!(seen.len() > 4000, "only {} distinct code lines", seen.len());
    }

    #[test]
    fn code_heavy_interleaves_ifetch_and_data() {
        let params = CodeHeavyParams {
            name: "t",
            code: CodeWalkParams::default(),
            data: HotRandomParams {
                instr_per_access_x256: 4 * 256,
                ..HotRandomParams::default()
            },
            seed: 1,
        };
        let mut w = CodeHeavyWorkload::new(params);
        let mut ifetch = 0;
        let mut data = 0;
        for _ in 0..10_000 {
            match w.next_access().kind {
                AccessKind::IFetch => ifetch += 1,
                _ => data += 1,
            }
        }
        assert!(ifetch > 1000, "ifetch {ifetch}");
        assert!(data > 1000, "data {data}");
        assert!(w.instructions() > 0);
    }
}
