//! Random access within a hot region, with sequential runs and rare cold
//! excursions.
//!
//! This is the structure the paper identifies as *lacking splittability*
//! (§3.4): "There exists applications with random-like reference streams
//! (we observed such behavior on 164.gzip and 175.vpr for instance)."

use crate::access::Access;
use crate::addr::Addr;
use crate::rng::Rng;
use crate::workload::{InstrBudget, Workload};

use super::{region_base, CodeFeed};

/// Parameters of [`HotRandomWorkload`].
#[derive(Debug, Clone)]
pub struct HotRandomParams {
    /// Size of the hot region in bytes.
    pub hot_bytes: u64,
    /// Size of the cold region in bytes (0 disables excursions).
    pub cold_bytes: u64,
    /// Per-mille probability that an access starts a sequential run.
    pub seq_run_permille: u64,
    /// Mean sequential-run length in 64-byte lines.
    pub run_lines_mean: u64,
    /// Parts-per-million probability of a cold-region excursion.
    pub cold_ppm: u64,
    /// Per-mille fraction of data accesses that are stores.
    pub store_permille: u64,
    /// Mean instructions per data access, in 1/256ths.
    pub instr_per_access_x256: u64,
    /// Data region index (see [`region_base`]).
    pub region: u64,
    /// If non-zero, the hot region is a *sliding window*: its base
    /// advances by one line every `slide_every` data accesses (models
    /// gzip's dictionary window — compulsory misses dominate and the
    /// cached working set turns over continuously).
    pub slide_every: u64,
}

impl Default for HotRandomParams {
    fn default() -> Self {
        HotRandomParams {
            hot_bytes: 1 << 20,
            cold_bytes: 0,
            seq_run_permille: 100,
            run_lines_mean: 4,
            cold_ppm: 0,
            store_permille: 150,
            instr_per_access_x256: 3 * 256,
            region: 0,
            slide_every: 0,
        }
    }
}

/// A random-like reference stream: uniform accesses within a hot region,
/// short sequential runs, and rare excursions into a larger cold region.
#[derive(Debug, Clone)]
pub struct HotRandomWorkload {
    name: &'static str,
    params: HotRandomParams,
    rng: Rng,
    budget: InstrBudget,
    code: CodeFeed,
    /// Remaining lines of the current sequential run and its cursor.
    run: Option<(u64, u64)>,
    /// Current window base line (sliding mode) and accesses since the
    /// last slide step.
    window_base: u64,
    since_slide: u64,
}

impl HotRandomWorkload {
    /// Builds the workload. `rng` must already be forked per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the hot region is smaller than one line.
    pub fn new(name: &'static str, params: HotRandomParams, rng: Rng) -> Self {
        assert!(params.hot_bytes >= 64, "hot region must hold a line");
        let budget = InstrBudget::new(params.instr_per_access_x256);
        HotRandomWorkload {
            name,
            params,
            rng,
            budget,
            code: CodeFeed::tiny_loop(32),
            run: None,
            window_base: 0,
            since_slide: 0,
        }
    }

    fn hot_lines(&self) -> u64 {
        self.params.hot_bytes / 64
    }

    /// Byte address of the `line`-th line of the (possibly sliding)
    /// hot window.
    fn hot_addr(&self, line: u64) -> u64 {
        region_base(self.params.region) + (self.window_base + line) * 64
    }

    fn data_addr(&mut self) -> u64 {
        if self.params.slide_every > 0 {
            self.since_slide += 1;
            if self.since_slide == self.params.slide_every {
                self.since_slide = 0;
                self.window_base += 1;
            }
        }
        if let Some((cursor, left)) = self.run {
            let addr = self.hot_addr(cursor);
            // `cursor < hot_lines` always, so a compare replaces the
            // per-access modulo.
            let mut next = cursor + 1;
            if next == self.hot_lines() {
                next = 0;
            }
            self.run = if left > 1 {
                Some((next, left - 1))
            } else {
                None
            };
            return addr;
        }
        if self.params.cold_bytes > 0 && self.rng.chance(self.params.cold_ppm, 1_000_000) {
            // Cold excursion: the cold region lives past the hot
            // region's maximum extent (window slides are bounded well
            // below 1 GiB in any practical run).
            let base = region_base(self.params.region);
            let cold_lines = self.params.cold_bytes / 64;
            let line = (1 << 22) + self.rng.below(cold_lines);
            return base + line * 64;
        }
        let line = self.rng.below(self.hot_lines());
        if self.rng.chance(self.params.seq_run_permille, 1000) {
            let len = self.rng.burst_len(self.params.run_lines_mean);
            let mut start = line + 1;
            if start == self.hot_lines() {
                start = 0;
            }
            self.run = Some((start, len));
        }
        self.hot_addr(line)
    }
}

impl Workload for HotRandomWorkload {
    fn name(&self) -> &str {
        self.name
    }

    fn next_access(&mut self) -> Access {
        if let Some(f) = self.code.next_ifetch() {
            return f;
        }
        let addr = Addr::new(self.data_addr());
        let instrs = self.budget.step();
        self.code.charge(instrs);
        if self.rng.chance(self.params.store_permille, 1000) {
            Access::store(addr)
        } else {
            Access::load(addr)
        }
    }

    fn instructions(&self) -> u64 {
        self.budget.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use std::collections::HashSet;

    fn run(params: HotRandomParams, n: usize) -> Vec<Access> {
        let mut w = HotRandomWorkload::new("t", params, Rng::seed_from(1));
        (0..n).map(|_| w.next_access()).collect()
    }

    /// Byte offset of the cold region within the data region.
    const COLD_OFFSET: u64 = (1 << 22) * 64;

    #[test]
    fn data_stays_in_region() {
        let p = HotRandomParams {
            hot_bytes: 1 << 16,
            cold_bytes: 1 << 20,
            cold_ppm: 100_000,
            ..HotRandomParams::default()
        };
        let accesses = run(p, 20_000);
        let base = region_base(0);
        let limit = region_base(1);
        for a in accesses.iter().filter(|a| a.kind.is_data()) {
            assert!(a.addr.raw() >= base && a.addr.raw() < limit);
        }
    }

    #[test]
    fn cold_excursions_happen_at_requested_rate() {
        let p = HotRandomParams {
            hot_bytes: 1 << 16,
            cold_bytes: 1 << 22,
            cold_ppm: 100_000,
            seq_run_permille: 0,
            ..HotRandomParams::default()
        };
        let accesses = run(p, 50_000);
        let base = region_base(0);
        let data: Vec<_> = accesses.iter().filter(|a| a.kind.is_data()).collect();
        let cold = data
            .iter()
            .filter(|a| a.addr.raw() >= base + COLD_OFFSET)
            .count();
        let frac = cold as f64 / data.len() as f64;
        assert!((0.07..0.13).contains(&frac), "cold fraction {frac}");
    }

    #[test]
    fn sliding_window_advances() {
        let p = HotRandomParams {
            hot_bytes: 1 << 14, // 256 lines
            slide_every: 10,
            seq_run_permille: 0,
            store_permille: 0,
            ..HotRandomParams::default()
        };
        let accesses = run(p, 40_000);
        let base = region_base(0);
        let data: Vec<u64> = accesses
            .iter()
            .filter(|a| a.kind.is_data())
            .map(|a| (a.addr.raw() - base) / 64)
            .collect();
        // After k accesses the window starts at k/10; early accesses
        // stay below 256, late ones must exceed it.
        let early_max = data[..100].iter().max().unwrap();
        let late_min = data[data.len() - 100..].iter().min().unwrap();
        assert!(*early_max < 256 + 10);
        assert!(*late_min > 256, "window did not slide: late min {late_min}");
    }

    #[test]
    fn stores_at_requested_rate() {
        let p = HotRandomParams {
            store_permille: 300,
            ..HotRandomParams::default()
        };
        let accesses = run(p, 50_000);
        let data: Vec<_> = accesses.iter().filter(|a| a.kind.is_data()).collect();
        let stores = data.iter().filter(|a| a.kind == AccessKind::Store).count();
        let frac = stores as f64 / data.len() as f64;
        assert!((0.25..0.35).contains(&frac), "store fraction {frac}");
    }

    #[test]
    fn covers_most_of_hot_region() {
        let p = HotRandomParams {
            hot_bytes: 1 << 14, // 256 lines
            ..HotRandomParams::default()
        };
        let accesses = run(p, 20_000);
        let distinct: HashSet<u64> = accesses
            .iter()
            .filter(|a| a.kind.is_data())
            .map(|a| a.addr.raw() / 64)
            .collect();
        assert!(distinct.len() > 200, "covered {} lines", distinct.len());
    }

    #[test]
    fn sequential_runs_produce_adjacent_lines() {
        let p = HotRandomParams {
            seq_run_permille: 1000,
            run_lines_mean: 8,
            store_permille: 0,
            ..HotRandomParams::default()
        };
        let accesses = run(p, 10_000);
        let lines: Vec<u64> = accesses
            .iter()
            .filter(|a| a.kind.is_data())
            .map(|a| a.addr.raw() / 64)
            .collect();
        let adjacent = lines
            .windows(2)
            .filter(|w| w[1] == w[0] + 1 || (w[1] + (1 << 20) / 64 == w[0] + 1))
            .count();
        assert!(
            adjacent * 2 > lines.len(),
            "only {adjacent} adjacent pairs out of {}",
            lines.len()
        );
    }

    #[test]
    fn deterministic() {
        let p = HotRandomParams::default();
        assert_eq!(run(p.clone(), 1000), run(p, 1000));
    }
}
