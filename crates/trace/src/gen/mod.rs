//! Workload generator engines.
//!
//! Each engine models one memory-reference *structure* that the paper's
//! analysis distinguishes:
//!
//! - [`CircularWorkload`] / [`HalfRandomWorkload`] — the abstract streams
//!   of §3.3 used to characterise the affinity algorithm (Figure 3).
//! - [`SweepWorkload`] — repeated sequential sweeps over large arrays
//!   (swim, mgrid, art, ammp): circular behaviour at line granularity.
//! - [`PointerRingWorkload`] — traversal of linked data structures in a
//!   (mostly) stable order (mcf, em3d, health, bh, bisort, mst): circular
//!   with scattered addresses plus optional random noise, growth, and
//!   periodic re-linking.
//! - [`HotRandomWorkload`] — random access within a hot region with
//!   sequential runs and rare cold excursions (gzip, vpr, parser, twolf):
//!   the paper's examples of streams with little or no "splittability".
//! - [`BlockPhaseWorkload`] — repeated passes over one block, then a phase
//!   change to the next block (bzip2).
//! - [`CodeHeavyWorkload`] — a large instruction footprint walked with
//!   limited loop reuse plus a data side (gcc, crafty, vortex).
//!
//! All engines are deterministic given their seed and share a fixed
//! address-space layout: code at [`CODE_BASE`], data regions spaced 1 GiB
//! apart from [`DATA_BASE`], so generators never alias each other's
//! regions.

mod abstracts;
mod code;
mod hot_random;
mod phases;
mod pointer;
mod sweep;

pub use abstracts::{CircularWorkload, HalfRandomWorkload};
pub use code::{CodeFeed, CodeHeavyParams, CodeHeavyWorkload, CodeWalkParams};
pub use hot_random::{HotRandomParams, HotRandomWorkload};
pub use phases::{BlockPhaseParams, BlockPhaseWorkload};
pub use pointer::{PointerRingParams, PointerRingWorkload, RingGrowth};
pub use sweep::{SweepParams, SweepWorkload};

/// Base byte address of the code segment.
pub const CODE_BASE: u64 = 1 << 32;

/// Base byte address of the first data region.
pub const DATA_BASE: u64 = 1 << 33;

/// Base byte address of data region `i` (regions are 1 GiB apart).
pub const fn region_base(i: u64) -> u64 {
    DATA_BASE + i * (1 << 30)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap_code() {
        assert!(region_base(0) > CODE_BASE + (1 << 30));
        assert_eq!(region_base(1) - region_base(0), 1 << 30);
    }
}
