//! Block-phased behaviour: repeated passes over one block, then a phase
//! change to the next block (256.bzip2's block-sorting compression).
//!
//! Each block is revisited several times (sort passes, move-to-front,
//! entropy coding), producing a circular working set that fits the
//! aggregate L2 but not a single one — hence bzip2's 0.35 L2-miss ratio
//! in Table 2 — punctuated by phase changes when the next block starts.

use crate::access::Access;
use crate::addr::Addr;
use crate::rng::Rng;
use crate::workload::{InstrBudget, Workload};

use super::{region_base, CodeFeed};

/// Parameters of [`BlockPhaseWorkload`].
#[derive(Debug, Clone)]
pub struct BlockPhaseParams {
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Number of distinct blocks cycled through.
    pub blocks: u64,
    /// Sequential-ish passes over a block before moving on.
    pub passes_per_block: u64,
    /// Per-mille probability that a step is a random touch within the
    /// block (suffix-sorting comparisons) rather than sequential.
    pub random_permille: u64,
    /// Per-mille fraction of accesses that are stores.
    pub store_permille: u64,
    /// Mean instructions per data access, in 1/256ths.
    pub instr_per_access_x256: u64,
    /// Access stride in bytes during sequential portions.
    pub stride: u64,
}

impl Default for BlockPhaseParams {
    fn default() -> Self {
        BlockPhaseParams {
            block_bytes: 900 << 10,
            blocks: 8,
            passes_per_block: 6,
            random_permille: 250,
            store_permille: 250,
            instr_per_access_x256: 3 * 256,
            stride: 16,
        }
    }
}

/// Repeated mixed sequential/random passes over a block, then the next.
#[derive(Debug, Clone)]
pub struct BlockPhaseWorkload {
    name: &'static str,
    params: BlockPhaseParams,
    block: u64,
    pass: u64,
    offset: u64,
    rng: Rng,
    budget: InstrBudget,
    code: CodeFeed,
}

impl BlockPhaseWorkload {
    /// Builds the workload.
    ///
    /// # Panics
    ///
    /// Panics if a block is smaller than a line, there are no blocks or
    /// passes, or the stride is 0.
    pub fn new(name: &'static str, params: BlockPhaseParams, seed: u64) -> Self {
        assert!(params.block_bytes >= 64, "block must hold a line");
        assert!(params.blocks > 0, "need at least one block");
        assert!(params.passes_per_block > 0, "need at least one pass");
        assert!(params.stride > 0, "stride must be > 0");
        let budget = InstrBudget::new(params.instr_per_access_x256);
        BlockPhaseWorkload {
            name,
            params,
            block: 0,
            pass: 0,
            offset: 0,
            rng: Rng::seed_from(seed),
            budget,
            code: CodeFeed::tiny_loop(64),
        }
    }

    /// The byte base of the block currently being processed.
    pub fn current_block_base(&self) -> u64 {
        // Blocks live in one region, spaced a block apart.
        region_base(0) + self.block * self.params.block_bytes
    }

    fn next_data_addr(&mut self) -> u64 {
        let base = self.current_block_base();
        if self.rng.chance(self.params.random_permille, 1000) {
            return base + self.rng.below(self.params.block_bytes / 64) * 64;
        }
        let addr = base + self.offset;
        self.offset += self.params.stride;
        if self.offset >= self.params.block_bytes {
            self.offset = 0;
            self.pass += 1;
            if self.pass == self.params.passes_per_block {
                self.pass = 0;
                self.block = (self.block + 1) % self.params.blocks;
            }
        }
        addr
    }
}

impl Workload for BlockPhaseWorkload {
    fn name(&self) -> &str {
        self.name
    }

    fn next_access(&mut self) -> Access {
        if let Some(f) = self.code.next_ifetch() {
            return f;
        }
        let addr = Addr::new(self.next_data_addr());
        let instrs = self.budget.step();
        self.code.charge(instrs);
        if self.rng.chance(self.params.store_permille, 1000) {
            Access::store(addr)
        } else {
            Access::load(addr)
        }
    }

    fn instructions(&self) -> u64 {
        self.budget.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_addrs(w: &mut BlockPhaseWorkload, n: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < n {
            let a = w.next_access();
            if a.kind.is_data() {
                out.push(a.addr.raw());
            }
        }
        out
    }

    #[test]
    fn stays_within_current_block_until_phase_change() {
        let p = BlockPhaseParams {
            block_bytes: 1 << 14,
            blocks: 4,
            passes_per_block: 2,
            random_permille: 500,
            stride: 64,
            ..BlockPhaseParams::default()
        };
        let mut w = BlockPhaseWorkload::new("t", p, 1);
        let base0 = w.current_block_base();
        // The first sequential pass has 256 steps; with 50% random mixed
        // in, the first ~300 accesses are certainly in block 0.
        for addr in data_addrs(&mut w, 300) {
            assert!(
                (base0..base0 + (1 << 14)).contains(&addr),
                "{addr:#x} escaped block 0"
            );
        }
    }

    #[test]
    fn phases_advance_through_blocks_and_wrap() {
        let p = BlockPhaseParams {
            block_bytes: 1 << 12,
            blocks: 3,
            passes_per_block: 1,
            random_permille: 0,
            stride: 64,
            store_permille: 0,
            ..BlockPhaseParams::default()
        };
        let mut w = BlockPhaseWorkload::new("t", p, 1);
        let addrs = data_addrs(&mut w, 64 * 3 + 1);
        let blocks: Vec<u64> = addrs
            .iter()
            .map(|a| (a - region_base(0)) / (1 << 12))
            .collect();
        assert_eq!(blocks[0], 0);
        assert_eq!(blocks[64], 1);
        assert_eq!(blocks[128], 2);
        assert_eq!(blocks[192], 0, "should wrap to block 0");
    }

    #[test]
    fn random_touches_stay_in_block() {
        let p = BlockPhaseParams {
            block_bytes: 1 << 13,
            blocks: 1,
            random_permille: 1000,
            ..BlockPhaseParams::default()
        };
        let mut w = BlockPhaseWorkload::new("t", p, 2);
        let base = w.current_block_base();
        for addr in data_addrs(&mut w, 5000) {
            assert!((base..base + (1 << 13)).contains(&addr));
        }
    }

    #[test]
    fn deterministic() {
        let p = BlockPhaseParams::default();
        let mut a = BlockPhaseWorkload::new("t", p.clone(), 9);
        let mut b = BlockPhaseWorkload::new("t", p, 9);
        for _ in 0..2000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_zero_blocks() {
        BlockPhaseWorkload::new(
            "t",
            BlockPhaseParams {
                blocks: 0,
                ..BlockPhaseParams::default()
            },
            1,
        );
    }
}
