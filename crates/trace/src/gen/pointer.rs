//! Traversal of linked data structures in a (mostly) stable order.
//!
//! The Olden benchmarks and 181.mcf walk pointer-linked structures whose
//! traversal order is fixed by the links: at line granularity this is a
//! *Circular* stream over scattered addresses, which the paper identifies
//! as the splittable common case ("much of the splittability we observed
//! seems to come from circular working-set behaviors", §6). Noise, growth
//! and periodic re-linking knobs degrade the circularity to model mcf,
//! health and bisort respectively.

use crate::access::Access;
use crate::addr::Addr;
use crate::rng::Rng;
use crate::workload::{InstrBudget, Workload};

use super::{region_base, CodeFeed};

/// Parameters of [`PointerRingWorkload`].
#[derive(Debug, Clone)]
pub struct PointerRingParams {
    /// Number of nodes; each node occupies `node_lines` 64-byte lines.
    pub nodes: u64,
    /// Lines per node (≥ 1). All lines of a node are touched in order.
    pub node_lines: u64,
    /// Per-mille probability that a step is a *detour*: one access to a
    /// uniformly random live node, after which the traversal resumes
    /// where it left off. Detours add unsplittable references without
    /// fragmenting the ring order (fragments shorter than `|R|` would
    /// defeat the affinity mechanism entirely, per §3.3's observation
    /// that `|R|` must not exceed the synchronous-group size).
    pub noise_permille: u64,
    /// Per-mille fraction of accesses that are stores.
    pub store_permille: u64,
    /// Mean instructions per data access, in 1/256ths.
    pub instr_per_access_x256: u64,
    /// If set, the structure starts with `start` nodes live and gains
    /// `per_pass` nodes after each full traversal (models health).
    pub growth: Option<RingGrowth>,
    /// If set, the link order is re-shuffled every `n` passes (models
    /// bisort's bitonic phases destroying the traversal order).
    pub relink_every_passes: Option<u64>,
    /// If set to `(permille, window)`, a step revisits one of the
    /// `window` most recently traversed nodes with the given per-mille
    /// probability instead of advancing (models neighbour-list reuse in
    /// em3d/mcf: misses the small L1 but hits the L2).
    pub revisit: Option<(u64, u64)>,
}

/// Growth schedule for [`PointerRingParams::growth`].
#[derive(Debug, Clone, Copy)]
pub struct RingGrowth {
    /// Initial number of live nodes.
    pub start: u64,
    /// Nodes added after each full pass.
    pub per_pass: u64,
}

impl Default for PointerRingParams {
    fn default() -> Self {
        PointerRingParams {
            nodes: 16 << 10,
            node_lines: 1,
            noise_permille: 0,
            store_permille: 150,
            instr_per_access_x256: 4 * 256,
            growth: None,
            relink_every_passes: None,
            revisit: None,
        }
    }
}

/// A ring of scattered nodes traversed in link order.
#[derive(Debug, Clone)]
pub struct PointerRingWorkload {
    name: &'static str,
    params: PointerRingParams,
    /// Permutation: traversal position -> node id.
    order: Vec<u32>,
    pos: u64,
    line_in_node: u64,
    live: u64,
    pass: u64,
    /// Ring buffer of recently traversed nodes (for `revisit`).
    recent: Vec<u32>,
    recent_at: usize,
    rng: Rng,
    budget: InstrBudget,
    code: CodeFeed,
}

impl PointerRingWorkload {
    /// Builds the ring; node placement is a random permutation of the
    /// region so that consecutive traversal steps touch scattered lines.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, `node_lines == 0`, or a growth schedule
    /// starts above `nodes` or adds 0 nodes per pass.
    pub fn new(name: &'static str, params: PointerRingParams, seed: u64) -> Self {
        assert!(params.nodes > 0, "need at least one node");
        assert!(params.node_lines > 0, "nodes must hold at least one line");
        assert!(
            params.nodes <= u32::MAX as u64,
            "node count must fit in u32"
        );
        if let Some(g) = params.growth {
            assert!(g.start > 0 && g.start <= params.nodes, "bad growth start");
            assert!(g.per_pass > 0, "growth must add nodes");
        }
        if let Some((pm, window)) = params.revisit {
            assert!(pm <= 1000, "revisit probability above 1000 per mille");
            assert!(window > 0, "revisit window must be > 0");
        }
        let mut rng = Rng::seed_from(seed);
        let mut order: Vec<u32> = (0..params.nodes as u32).collect();
        rng.shuffle(&mut order);
        let live = params.growth.map_or(params.nodes, |g| g.start);
        let budget = InstrBudget::new(params.instr_per_access_x256);
        PointerRingWorkload {
            name,
            params,
            order,
            pos: 0,
            line_in_node: 0,
            live,
            pass: 0,
            recent: Vec::new(),
            recent_at: 0,
            rng,
            budget,
            code: CodeFeed::tiny_loop(40),
        }
    }

    /// Current working-set size in bytes (grows under a growth schedule).
    pub fn working_set_bytes(&self) -> u64 {
        self.live * self.params.node_lines * 64
    }

    fn node_addr(&self, node: u32) -> u64 {
        region_base(0) + node as u64 * self.params.node_lines * 64
    }

    fn end_of_pass(&mut self) {
        self.pass += 1;
        if let Some(g) = self.params.growth {
            self.live = (self.live + g.per_pass).min(self.params.nodes);
        }
        if let Some(every) = self.params.relink_every_passes {
            if self.pass.is_multiple_of(every) {
                // Re-link: shuffle the live prefix of the traversal order.
                let live = self.live as usize;
                self.rng.shuffle(&mut self.order[..live]);
            }
        }
    }

    fn remember(&mut self, node: u32) {
        let window = match self.params.revisit {
            Some((_, w)) => w as usize,
            None => return,
        };
        if self.recent.len() < window {
            self.recent.push(node);
        } else {
            self.recent[self.recent_at] = node;
            self.recent_at = (self.recent_at + 1) % window;
        }
    }

    fn next_data_addr(&mut self) -> u64 {
        if self.line_in_node == 0 {
            if let Some((pm, _)) = self.params.revisit {
                if !self.recent.is_empty() && self.rng.chance(pm, 1000) {
                    let idx = self.rng.below(self.recent.len() as u64) as usize;
                    return self.node_addr(self.recent[idx]);
                }
            }
        }
        if self.line_in_node == 0
            && self.params.noise_permille > 0
            && self.rng.chance(self.params.noise_permille, 1000)
        {
            let idx = self.rng.below(self.live) as usize;
            return self.node_addr(self.order[idx]);
        }
        let node = self.order[self.pos as usize];
        let addr = self.node_addr(node) + self.line_in_node * 64;
        self.line_in_node += 1;
        if self.line_in_node == self.params.node_lines {
            self.line_in_node = 0;
            self.remember(node);
            self.pos += 1;
            if self.pos >= self.live {
                self.pos = 0;
                self.end_of_pass();
            }
        }
        addr
    }
}

impl Workload for PointerRingWorkload {
    fn name(&self) -> &str {
        self.name
    }

    fn next_access(&mut self) -> Access {
        if let Some(f) = self.code.next_ifetch() {
            return f;
        }
        let addr = Addr::new(self.next_data_addr());
        let instrs = self.budget.step();
        self.code.charge(instrs);
        if self.params.store_permille > 0 && self.rng.chance(self.params.store_permille, 1000) {
            Access::store(addr)
        } else {
            // Traversal loads chase links: tag them as pointer loads.
            Access::pointer_load(addr)
        }
    }

    fn instructions(&self) -> u64 {
        self.budget.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn data_lines(w: &mut PointerRingWorkload, n: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < n {
            let a = w.next_access();
            if a.kind.is_data() {
                out.push(a.addr.raw() / 64);
            }
        }
        out
    }

    #[test]
    fn traversal_repeats_identically_without_noise() {
        let p = PointerRingParams {
            nodes: 128,
            noise_permille: 0,
            store_permille: 0,
            ..PointerRingParams::default()
        };
        let mut w = PointerRingWorkload::new("t", p, 3);
        let lines = data_lines(&mut w, 256);
        assert_eq!(&lines[..128], &lines[128..], "second pass differs");
        let distinct: HashSet<u64> = lines.iter().copied().collect();
        assert_eq!(distinct.len(), 128);
    }

    #[test]
    fn order_is_scattered_not_sequential() {
        let p = PointerRingParams {
            nodes: 1024,
            store_permille: 0,
            ..PointerRingParams::default()
        };
        let mut w = PointerRingWorkload::new("t", p, 4);
        let lines = data_lines(&mut w, 1024);
        let adjacent = lines.windows(2).filter(|c| c[1] == c[0] + 1).count();
        assert!(adjacent < 32, "{adjacent} adjacent pairs — too sequential");
    }

    #[test]
    fn multi_line_nodes_touch_consecutive_lines() {
        let p = PointerRingParams {
            nodes: 16,
            node_lines: 3,
            store_permille: 0,
            ..PointerRingParams::default()
        };
        let mut w = PointerRingWorkload::new("t", p, 5);
        let lines = data_lines(&mut w, 48);
        for chunk in lines.chunks(3) {
            assert_eq!(chunk[1], chunk[0] + 1);
            assert_eq!(chunk[2], chunk[0] + 2);
        }
    }

    #[test]
    fn growth_expands_working_set() {
        let p = PointerRingParams {
            nodes: 1000,
            growth: Some(RingGrowth {
                start: 100,
                per_pass: 50,
            }),
            store_permille: 0,
            ..PointerRingParams::default()
        };
        let mut w = PointerRingWorkload::new("t", p, 6);
        assert_eq!(w.working_set_bytes(), 100 * 64);
        let _ = data_lines(&mut w, 2000);
        assert!(w.working_set_bytes() > 100 * 64);
        let mut w2 = w.clone();
        let _ = data_lines(&mut w2, 200_000);
        assert_eq!(w2.working_set_bytes(), 1000 * 64, "growth must saturate");
    }

    #[test]
    fn relink_changes_traversal_order() {
        let p = PointerRingParams {
            nodes: 256,
            relink_every_passes: Some(1),
            store_permille: 0,
            ..PointerRingParams::default()
        };
        let mut w = PointerRingWorkload::new("t", p, 7);
        let lines = data_lines(&mut w, 512);
        assert_ne!(&lines[..256], &lines[256..], "relink had no effect");
        // Same set of lines either way.
        let a: HashSet<u64> = lines[..256].iter().copied().collect();
        let b: HashSet<u64> = lines[256..].iter().copied().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn noise_breaks_strict_repetition() {
        let p = PointerRingParams {
            nodes: 256,
            noise_permille: 300,
            store_permille: 0,
            ..PointerRingParams::default()
        };
        let mut w = PointerRingWorkload::new("t", p, 8);
        let lines = data_lines(&mut w, 512);
        assert_ne!(&lines[..256], &lines[256..]);
    }

    #[test]
    fn revisit_reuses_recent_nodes() {
        let p = PointerRingParams {
            nodes: 4096,
            revisit: Some((400, 64)),
            store_permille: 0,
            ..PointerRingParams::default()
        };
        let mut w = PointerRingWorkload::new("t", p, 9);
        let lines = data_lines(&mut w, 4096);
        // With 40% revisits into a 64-node window, many lines repeat well
        // before a full pass completes.
        let distinct: HashSet<u64> = lines.iter().copied().collect();
        assert!(
            distinct.len() < 3500,
            "{} distinct lines — revisits not happening",
            distinct.len()
        );
    }

    #[test]
    #[should_panic(expected = "revisit window")]
    fn rejects_zero_revisit_window() {
        PointerRingWorkload::new(
            "t",
            PointerRingParams {
                revisit: Some((100, 0)),
                ..PointerRingParams::default()
            },
            1,
        );
    }

    #[test]
    #[should_panic(expected = "bad growth start")]
    fn rejects_bad_growth() {
        PointerRingWorkload::new(
            "t",
            PointerRingParams {
                nodes: 10,
                growth: Some(RingGrowth {
                    start: 20,
                    per_pass: 1,
                }),
                ..PointerRingParams::default()
            },
            1,
        );
    }
}
