//! Repeated sequential sweeps over large arrays.
//!
//! At cache-line granularity this is precisely the paper's *Circular*
//! behaviour (§3.3) and models the loop-nest benchmarks: swim, mgrid,
//! art, ammp. A working set larger than one L2 but smaller than the
//! aggregate L2 capacity is the paper's best case for execution
//! migration (179.art: L2-miss ratio 0.03 in Table 2).

use crate::access::Access;
use crate::addr::Addr;
use crate::rng::Rng;
use crate::workload::{InstrBudget, Workload};

use super::{region_base, CodeFeed};

/// Parameters of [`SweepWorkload`].
#[derive(Debug, Clone)]
pub struct SweepParams {
    /// Sizes of the arrays swept, in bytes, in sweep order.
    pub arrays: Vec<u64>,
    /// Access strides in bytes, cycled per full pass over all arrays
    /// (models multigrid-style level changes; use `[8]` for dense
    /// element-by-element sweeps).
    pub strides: Vec<u64>,
    /// Per-mille fraction of accesses that are stores.
    pub store_permille: u64,
    /// Mean instructions per data access, in 1/256ths.
    pub instr_per_access_x256: u64,
    /// Per-mille probability of an out-of-order random touch within the
    /// current array (models boundary/index accesses).
    pub noise_permille: u64,
}

impl Default for SweepParams {
    fn default() -> Self {
        SweepParams {
            arrays: vec![1 << 20],
            strides: vec![8],
            store_permille: 200,
            instr_per_access_x256: 4 * 256,
            noise_permille: 0,
        }
    }
}

/// Sequential sweeps over a set of arrays, repeated forever.
#[derive(Debug, Clone)]
pub struct SweepWorkload {
    name: &'static str,
    params: SweepParams,
    /// Byte base of each array.
    bases: Vec<u64>,
    array: usize,
    offset: u64,
    pass: u64,
    /// `stride()` for the current pass, cached so the hot path does no
    /// modulo (see [`advance`](Self::advance)).
    cur_stride: u64,
    rng: Rng,
    budget: InstrBudget,
    code: CodeFeed,
}

impl SweepWorkload {
    /// Builds the workload; arrays are laid out in consecutive 1 GiB
    /// regions so they never alias.
    ///
    /// # Panics
    ///
    /// Panics if there are no arrays, an array is empty, or a stride is 0.
    pub fn new(name: &'static str, params: SweepParams, seed: u64) -> Self {
        assert!(!params.arrays.is_empty(), "need at least one array");
        assert!(
            params.arrays.iter().all(|&b| b >= 64),
            "arrays must hold a line"
        );
        assert!(!params.strides.is_empty(), "need at least one stride");
        assert!(params.strides.iter().all(|&s| s > 0), "strides must be > 0");
        let bases = (0..params.arrays.len() as u64).map(region_base).collect();
        let budget = InstrBudget::new(params.instr_per_access_x256);
        let cur_stride = params.strides[0];
        SweepWorkload {
            name,
            params,
            bases,
            array: 0,
            offset: 0,
            pass: 0,
            cur_stride,
            rng: Rng::seed_from(seed),
            budget,
            code: CodeFeed::tiny_loop(48),
        }
    }

    /// Total bytes across all arrays — the circular working-set size.
    pub fn working_set_bytes(&self) -> u64 {
        self.params.arrays.iter().sum()
    }

    fn stride(&self) -> u64 {
        self.params.strides[(self.pass as usize) % self.params.strides.len()]
    }

    fn advance(&mut self) -> u64 {
        let size = self.params.arrays[self.array];
        let addr = self.bases[self.array] + self.offset;
        // `cur_stride` mirrors `stride()` but is refreshed only when
        // `pass` changes: the modulo indexing would otherwise cost an
        // integer division on every access.
        self.offset += self.cur_stride;
        if self.offset >= size {
            self.offset = 0;
            self.array += 1;
            if self.array == self.params.arrays.len() {
                self.array = 0;
                self.pass += 1;
                self.cur_stride = self.stride();
            }
        }
        addr
    }
}

impl Workload for SweepWorkload {
    fn name(&self) -> &str {
        self.name
    }

    fn next_access(&mut self) -> Access {
        if let Some(f) = self.code.next_ifetch() {
            return f;
        }
        let addr = if self.params.noise_permille > 0
            && self.rng.chance(self.params.noise_permille, 1000)
        {
            let size = self.params.arrays[self.array];
            self.bases[self.array] + self.rng.below(size / 64) * 64
        } else {
            self.advance()
        };
        let instrs = self.budget.step();
        self.code.charge(instrs);
        if self.params.store_permille > 0 && self.rng.chance(self.params.store_permille, 1000) {
            Access::store(Addr::new(addr))
        } else {
            Access::load(Addr::new(addr))
        }
    }

    fn instructions(&self) -> u64 {
        self.budget.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(w: &mut SweepWorkload, n: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < n {
            let a = w.next_access();
            if a.kind.is_data() {
                out.push(a.addr.raw() / 64);
            }
        }
        out
    }

    #[test]
    fn sweep_is_monotone_within_array() {
        let p = SweepParams {
            arrays: vec![1 << 16],
            strides: vec![64],
            store_permille: 0,
            noise_permille: 0,
            ..SweepParams::default()
        };
        let mut w = SweepWorkload::new("t", p, 1);
        let lines = lines_of(&mut w, 1024);
        for pair in lines.windows(2) {
            let wrap = pair[1] == lines[0];
            assert!(pair[1] == pair[0] + 1 || wrap, "{pair:?}");
        }
    }

    #[test]
    fn sweep_cycles_through_all_arrays() {
        let p = SweepParams {
            arrays: vec![1 << 12, 1 << 12, 1 << 12],
            strides: vec![64],
            store_permille: 0,
            ..SweepParams::default()
        };
        let mut w = SweepWorkload::new("t", p, 1);
        let lines = lines_of(&mut w, 64 * 3 + 1);
        // After sweeping three 64-line arrays we are back at the start.
        assert_eq!(lines[0], lines[64 * 3]);
        let distinct: std::collections::HashSet<u64> = lines.iter().copied().collect();
        assert_eq!(distinct.len(), 64 * 3);
    }

    #[test]
    fn strides_cycle_per_pass() {
        let p = SweepParams {
            arrays: vec![1 << 12],
            strides: vec![64, 128],
            store_permille: 0,
            ..SweepParams::default()
        };
        let mut w = SweepWorkload::new("t", p, 1);
        // First pass: 64 lines at stride 64; second: 32 lines at stride 128.
        let lines = lines_of(&mut w, 64 + 32 + 1);
        assert_eq!(lines[64], lines[0]);
        assert_eq!(lines[65], lines[0] + 2);
    }

    #[test]
    fn working_set_reports_total() {
        let p = SweepParams {
            arrays: vec![1 << 20, 1 << 21],
            ..SweepParams::default()
        };
        let w = SweepWorkload::new("t", p, 1);
        assert_eq!(w.working_set_bytes(), (1 << 20) + (1 << 21));
    }

    #[test]
    fn dense_stride_revisits_lines() {
        // With an 8-byte stride, 8 consecutive accesses share a line.
        let p = SweepParams {
            arrays: vec![1 << 12],
            strides: vec![8],
            store_permille: 0,
            ..SweepParams::default()
        };
        let mut w = SweepWorkload::new("t", p, 1);
        let lines = lines_of(&mut w, 16);
        assert_eq!(lines[0], lines[7]);
        assert_eq!(lines[8], lines[0] + 1);
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn rejects_empty_arrays() {
        SweepWorkload::new(
            "t",
            SweepParams {
                arrays: vec![],
                ..SweepParams::default()
            },
            1,
        );
    }
}
