//! Trace recording and replay.
//!
//! The synthetic generators cover the paper's suite, but a downstream
//! user evaluating execution migration on their own application wants
//! to feed a *recorded* reference stream through the same machinery.
//! This module defines a compact binary trace format and a [`Workload`]
//! adapter that replays it.
//!
//! # Format
//!
//! A trace is a magic header (`EMT1`), then one record per access:
//!
//! - 1 tag byte: bits 0–1 = kind (0 ifetch, 1 load, 2 store),
//!   bit 2 = pointer load, bit 3 = "address is a delta from the
//!   previous access's address" (signed zig-zag), bits 4–7 reserved;
//! - LEB128 varint: the byte address (absolute) or zig-zag delta;
//! - LEB128 varint: instructions retired up to and including this
//!   access, as a delta from the previous record.
//!
//! Sequential streams compress to ~3 bytes per access.
//!
//! # Errors
//!
//! All fallible operations return [`TraceIoError`], which distinguishes
//! transport failures ([`TraceIoError::Io`]) from format violations
//! (bad magic, truncated varints, invalid kinds, non-monotonic
//! instruction counts). Replay through the infallible
//! [`Workload::next_access`] interface is available for bounded runs;
//! [`TraceReader::try_next_access`] is the non-panicking equivalent.

use crate::access::{Access, AccessKind};
use crate::addr::Addr;
use crate::workload::Workload;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"EMT1";

/// Errors produced while recording or replaying a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The stream does not begin with the `EMT1` magic header.
    BadMagic([u8; 4]),
    /// A length-prefixed integer ran past 64 bits.
    VarintOverflow,
    /// A record tag carried an invalid access kind.
    BadKind(u8),
    /// A record's cumulative instruction count went backwards.
    NonMonotonic {
        /// The previous record's cumulative instruction count.
        prev: u64,
        /// The offending (smaller) count.
        got: u64,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::BadMagic(m) => {
                write!(f, "not an EMT1 trace (magic {m:02x?})")
            }
            TraceIoError::VarintOverflow => f.write_str("varint too long"),
            TraceIoError::BadKind(tag) => {
                write!(f, "bad access kind in tag byte {tag:#04x}")
            }
            TraceIoError::NonMonotonic { prev, got } => write!(
                f,
                "instruction counts must be non-decreasing ({got} after {prev})"
            ),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Result alias for trace I/O.
pub type TraceIoResult<T> = Result<T, TraceIoError>;

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> TraceIoResult<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> TraceIoResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(TraceIoError::VarintOverflow);
        }
        v |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes a trace to any [`Write`] sink (pass `&mut file` to keep the
/// file usable afterwards).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    last_addr: u64,
    last_instr: u64,
    records: u64,
    started: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W) -> TraceIoResult<Self> {
        sink.write_all(MAGIC)?;
        Ok(TraceWriter {
            sink,
            last_addr: 0,
            last_instr: 0,
            records: 0,
            started: false,
        })
    }

    /// Appends one access at the given cumulative instruction count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; rejects a non-monotonic instruction
    /// count with [`TraceIoError::NonMonotonic`].
    pub fn record(&mut self, access: Access, instructions: u64) -> TraceIoResult<()> {
        if instructions < self.last_instr {
            return Err(TraceIoError::NonMonotonic {
                prev: self.last_instr,
                got: instructions,
            });
        }
        let kind_bits = match access.kind {
            AccessKind::IFetch => 0u8,
            AccessKind::Load => 1,
            AccessKind::Store => 2,
        };
        let addr = access.addr.raw();
        let delta = addr.wrapping_sub(self.last_addr) as i64;
        // Prefer the delta encoding when it is shorter (small |delta|).
        let use_delta = self.started && delta.unsigned_abs() < addr;
        let mut tag = kind_bits;
        if access.pointer {
            tag |= 1 << 2;
        }
        if use_delta {
            tag |= 1 << 3;
        }
        self.sink.write_all(&[tag])?;
        if use_delta {
            write_varint(&mut self.sink, zigzag(delta))?;
        } else {
            write_varint(&mut self.sink, addr)?;
        }
        write_varint(&mut self.sink, instructions - self.last_instr)?;
        self.last_addr = addr;
        self.last_instr = instructions;
        self.records += 1;
        self.started = true;
        Ok(())
    }

    /// Records everything `workload` produces until `instructions`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn record_workload<Wk: Workload + ?Sized>(
        &mut self,
        workload: &mut Wk,
        instructions: u64,
    ) -> TraceIoResult<()> {
        while workload.instructions() < instructions {
            let access = workload.next_access();
            self.record(access, workload.instructions())?;
        }
        Ok(())
    }

    /// Number of records written.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn finish(mut self) -> TraceIoResult<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Replays a recorded trace as a [`Workload`].
///
/// The trace is finite. [`try_next_access`](TraceReader::try_next_access)
/// is the complete, non-panicking interface; the [`Workload`] adapter
/// panics past the end or on a corrupt record — check
/// [`is_finished`](TraceReader::is_finished) or bound the run by the
/// recorded instruction total.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    last_addr: u64,
    instructions: u64,
    finished: bool,
    /// Look-ahead slot so `is_finished` can probe for EOF.
    pending: Option<Access>,
    pending_instr: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating the header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or with [`TraceIoError::BadMagic`] when the
    /// stream is not an `EMT1` trace.
    pub fn new(mut source: R) -> TraceIoResult<Self> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceIoError::BadMagic(magic));
        }
        let mut reader = TraceReader {
            source,
            last_addr: 0,
            instructions: 0,
            finished: false,
            pending: None,
            pending_instr: 0,
        };
        reader.fetch()?;
        Ok(reader)
    }

    fn fetch(&mut self) -> TraceIoResult<()> {
        let mut tag = [0u8; 1];
        match self.source.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                self.finished = true;
                self.pending = None;
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        }
        let kind = match tag[0] & 0b11 {
            0 => AccessKind::IFetch,
            1 => AccessKind::Load,
            2 => AccessKind::Store,
            _ => return Err(TraceIoError::BadKind(tag[0])),
        };
        let pointer = tag[0] & (1 << 2) != 0;
        let raw = read_varint(&mut self.source)?;
        let addr = if tag[0] & (1 << 3) != 0 {
            self.last_addr.wrapping_add(unzigzag(raw) as u64)
        } else {
            raw
        };
        let dinstr = read_varint(&mut self.source)?;
        self.last_addr = addr;
        self.pending_instr = self.instructions + dinstr;
        self.pending = Some(Access {
            kind,
            addr: Addr::new(addr),
            pointer,
        });
        Ok(())
    }

    /// Returns the next access, `Ok(None)` once the trace is exhausted.
    ///
    /// This is the non-panicking replay interface; the [`Workload`]
    /// adapter is a thin wrapper around it.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a corrupt record.
    pub fn try_next_access(&mut self) -> TraceIoResult<Option<Access>> {
        let Some(access) = self.pending else {
            return Ok(None);
        };
        self.instructions = self.pending_instr;
        self.fetch()?;
        Ok(Some(access))
    }

    /// True once the trace is exhausted.
    pub fn is_finished(&self) -> bool {
        self.pending.is_none()
    }

    /// Total instructions of the records consumed so far.
    pub fn instructions_so_far(&self) -> u64 {
        self.instructions
    }
}

impl<R: Read> Workload for TraceReader<R> {
    fn name(&self) -> &str {
        "trace"
    }

    /// # Panics
    ///
    /// Panics when called past the end of the trace or on a corrupt
    /// record; bound the replay by the recorded totals or use
    /// [`TraceReader::try_next_access`].
    fn next_access(&mut self) -> Access {
        match self.try_next_access() {
            Ok(Some(access)) => access,
            Ok(None) => panic!("trace exhausted"),
            Err(e) => panic!("corrupt trace: {e}"),
        }
    }

    fn instructions(&self) -> u64 {
        self.instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn varint_roundtrip() -> TraceIoResult<()> {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v)?;
            assert_eq!(read_varint(&mut &buf[..])?, v);
        }
        Ok(())
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn record_replay_roundtrip() -> TraceIoResult<()> {
        let mut original = suite::by_name("mcf").expect("mcf is in the suite");
        let mut writer = TraceWriter::new(Vec::new())?;
        writer.record_workload(&mut *original, 200_000)?;
        let buf = writer.finish()?;

        // Replay and compare against a fresh instance of the generator.
        let mut reference = suite::by_name("mcf").expect("mcf is in the suite");
        let mut reader = TraceReader::new(&buf[..])?;
        while reference.instructions() < 200_000 {
            let want = reference.next_access();
            let got = reader.try_next_access()?.expect("trace ended early");
            assert_eq!(got, want);
            assert_eq!(reader.instructions(), reference.instructions());
        }
        assert!(reader.is_finished());
        Ok(())
    }

    #[test]
    fn compact_encoding_for_sequential_streams() -> TraceIoResult<()> {
        use crate::gen::CircularWorkload;
        let mut w = CircularWorkload::new(1000);
        let mut writer = TraceWriter::new(Vec::new())?;
        writer.record_workload(&mut w, 100_000)?;
        let records = writer.records();
        let buf = writer.finish()?;
        let per_record = buf.len() as f64 / records as f64;
        assert!(
            per_record < 4.0,
            "sequential trace costs {per_record:.1} B/record"
        );
        Ok(())
    }

    #[test]
    fn pointer_flag_survives() -> TraceIoResult<()> {
        let mut writer = TraceWriter::new(Vec::new())?;
        writer.record(Access::pointer_load(Addr::new(0x1234)), 3)?;
        writer.record(Access::store(Addr::new(0x1238)), 7)?;
        let buf = writer.finish()?;
        let mut reader = TraceReader::new(&buf[..])?;
        let a = reader.next_access();
        assert!(a.pointer);
        assert_eq!(reader.instructions(), 3);
        let b = reader.next_access();
        assert_eq!(b.kind, AccessKind::Store);
        assert_eq!(reader.instructions(), 7);
        assert!(reader.is_finished());
        Ok(())
    }

    #[test]
    fn rejects_bad_magic() {
        match TraceReader::new(&b"NOPE"[..]) {
            Err(TraceIoError::BadMagic(m)) => assert_eq!(&m, b"NOPE"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn rejects_decreasing_instructions() -> TraceIoResult<()> {
        let mut writer = TraceWriter::new(Vec::new())?;
        writer.record(Access::load(Addr::new(1)), 10)?;
        match writer.record(Access::load(Addr::new(2)), 5) {
            Err(TraceIoError::NonMonotonic { prev: 10, got: 5 }) => Ok(()),
            other => panic!("expected NonMonotonic, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_varint() -> TraceIoResult<()> {
        // Header + tag + a varint whose continuation never ends.
        let mut buf = Vec::from(*MAGIC);
        buf.push(1); // load, absolute address
        buf.extend([0x80u8; 11]); // 11 continuation bytes: > 64 bits
        match TraceReader::new(&buf[..]) {
            Err(TraceIoError::VarintOverflow) => Ok(()),
            other => panic!("expected VarintOverflow, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_kind() -> TraceIoResult<()> {
        let mut buf = Vec::from(*MAGIC);
        buf.push(3); // kind bits 0b11: invalid
        buf.push(0); // address varint
        buf.push(0); // instruction-delta varint
        match TraceReader::new(&buf[..]) {
            Err(TraceIoError::BadKind(3)) => Ok(()),
            other => panic!("expected BadKind, got {other:?}"),
        }
    }

    #[test]
    fn try_next_access_reports_exhaustion() -> TraceIoResult<()> {
        let writer = TraceWriter::new(Vec::new())?;
        let buf = writer.finish()?;
        let mut reader = TraceReader::new(&buf[..])?;
        assert!(reader.try_next_access()?.is_none());
        assert!(reader.try_next_access()?.is_none(), "exhaustion is sticky");
        Ok(())
    }

    #[test]
    fn errors_display_and_chain() {
        let e = TraceIoError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        let e = TraceIoError::NonMonotonic { prev: 9, got: 2 };
        assert!(e.to_string().contains("non-decreasing"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    #[should_panic(expected = "trace exhausted")]
    fn panics_past_end() {
        let writer = TraceWriter::new(Vec::new()).expect("vec sink");
        let buf = writer.finish().expect("flush to vec");
        let mut reader = TraceReader::new(&buf[..]).expect("empty trace");
        let _ = reader.next_access();
    }
}
