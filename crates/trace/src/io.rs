//! Trace recording and replay.
//!
//! The synthetic generators cover the paper's suite, but a downstream
//! user evaluating execution migration on their own application wants
//! to feed a *recorded* reference stream through the same machinery.
//! This module defines a compact binary trace format and a [`Workload`]
//! adapter that replays it.
//!
//! # Format
//!
//! A trace is a magic header (`EMT1`), then one record per access:
//!
//! - 1 tag byte: bits 0–1 = kind (0 ifetch, 1 load, 2 store),
//!   bit 2 = pointer load, bit 3 = "address is a delta from the
//!   previous access's address" (signed zig-zag), bits 4–7 reserved;
//! - LEB128 varint: the byte address (absolute) or zig-zag delta;
//! - LEB128 varint: instructions retired up to and including this
//!   access, as a delta from the previous record.
//!
//! Sequential streams compress to ~3 bytes per access.

use crate::access::{Access, AccessKind};
use crate::addr::Addr;
use crate::workload::Workload;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"EMT1";

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        v |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes a trace to any [`Write`] sink (pass `&mut file` to keep the
/// file usable afterwards).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    last_addr: u64,
    last_instr: u64,
    records: u64,
    started: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(MAGIC)?;
        Ok(TraceWriter {
            sink,
            last_addr: 0,
            last_instr: 0,
            records: 0,
            started: false,
        })
    }

    /// Appends one access at the given cumulative instruction count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; rejects a non-monotonic instruction
    /// count.
    pub fn record(&mut self, access: Access, instructions: u64) -> io::Result<()> {
        if instructions < self.last_instr {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "instruction counts must be non-decreasing",
            ));
        }
        let kind_bits = match access.kind {
            AccessKind::IFetch => 0u8,
            AccessKind::Load => 1,
            AccessKind::Store => 2,
        };
        let addr = access.addr.raw();
        let delta = addr.wrapping_sub(self.last_addr) as i64;
        // Prefer the delta encoding when it is shorter (small |delta|).
        let use_delta = self.started && delta.unsigned_abs() < addr;
        let mut tag = kind_bits;
        if access.pointer {
            tag |= 1 << 2;
        }
        if use_delta {
            tag |= 1 << 3;
        }
        self.sink.write_all(&[tag])?;
        if use_delta {
            write_varint(&mut self.sink, zigzag(delta))?;
        } else {
            write_varint(&mut self.sink, addr)?;
        }
        write_varint(&mut self.sink, instructions - self.last_instr)?;
        self.last_addr = addr;
        self.last_instr = instructions;
        self.records += 1;
        self.started = true;
        Ok(())
    }

    /// Records everything `workload` produces until `instructions`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn record_workload<Wk: Workload + ?Sized>(
        &mut self,
        workload: &mut Wk,
        instructions: u64,
    ) -> io::Result<()> {
        while workload.instructions() < instructions {
            let access = workload.next_access();
            self.record(access, workload.instructions())?;
        }
        Ok(())
    }

    /// Number of records written.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Replays a recorded trace as a [`Workload`].
///
/// The trace is finite; [`next_access`](Workload::next_access) panics
/// past the end — check [`is_finished`](TraceReader::is_finished) or
/// bound the run by the recorded instruction total.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    last_addr: u64,
    instructions: u64,
    finished: bool,
    /// Look-ahead slot so `is_finished` can probe for EOF.
    pending: Option<Access>,
    pending_instr: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating the header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a bad magic number.
    pub fn new(mut source: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an EMT1 trace",
            ));
        }
        let mut reader = TraceReader {
            source,
            last_addr: 0,
            instructions: 0,
            finished: false,
            pending: None,
            pending_instr: 0,
        };
        reader.fetch()?;
        Ok(reader)
    }

    fn fetch(&mut self) -> io::Result<()> {
        let mut tag = [0u8; 1];
        match self.source.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                self.finished = true;
                self.pending = None;
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let kind = match tag[0] & 0b11 {
            0 => AccessKind::IFetch,
            1 => AccessKind::Load,
            2 => AccessKind::Store,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad access kind",
                ))
            }
        };
        let pointer = tag[0] & (1 << 2) != 0;
        let raw = read_varint(&mut self.source)?;
        let addr = if tag[0] & (1 << 3) != 0 {
            self.last_addr.wrapping_add(unzigzag(raw) as u64)
        } else {
            raw
        };
        let dinstr = read_varint(&mut self.source)?;
        self.last_addr = addr;
        self.pending_instr = self.instructions + dinstr;
        self.pending = Some(Access {
            kind,
            addr: Addr::new(addr),
            pointer,
        });
        Ok(())
    }

    /// True once the trace is exhausted.
    pub fn is_finished(&self) -> bool {
        self.pending.is_none()
    }

    /// Total instructions of the records consumed so far.
    pub fn instructions_so_far(&self) -> u64 {
        self.instructions
    }
}

impl<R: Read> Workload for TraceReader<R> {
    fn name(&self) -> &str {
        "trace"
    }

    /// # Panics
    ///
    /// Panics when called past the end of the trace or on a corrupt
    /// record; bound the replay by the recorded totals.
    fn next_access(&mut self) -> Access {
        let access = self.pending.expect("trace exhausted");
        self.instructions = self.pending_instr;
        self.fetch().expect("corrupt trace");
        access
    }

    fn instructions(&self) -> u64 {
        self.instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut &buf[..]).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn record_replay_roundtrip() {
        let mut original = suite::by_name("mcf").unwrap();
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        writer.record_workload(&mut *original, 200_000).unwrap();
        let buf = writer.finish().unwrap();

        // Replay and compare against a fresh instance of the generator.
        let mut reference = suite::by_name("mcf").unwrap();
        let mut reader = TraceReader::new(&buf[..]).unwrap();
        while reference.instructions() < 200_000 {
            let want = reference.next_access();
            let got = reader.next_access();
            assert_eq!(got, want);
            assert_eq!(reader.instructions(), reference.instructions());
        }
        assert!(reader.is_finished());
    }

    #[test]
    fn compact_encoding_for_sequential_streams() {
        use crate::gen::CircularWorkload;
        let mut w = CircularWorkload::new(1000);
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        writer.record_workload(&mut w, 100_000).unwrap();
        let records = writer.records();
        let buf = writer.finish().unwrap();
        let per_record = buf.len() as f64 / records as f64;
        assert!(
            per_record < 4.0,
            "sequential trace costs {per_record:.1} B/record"
        );
    }

    #[test]
    fn pointer_flag_survives() {
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        writer
            .record(Access::pointer_load(Addr::new(0x1234)), 3)
            .unwrap();
        writer.record(Access::store(Addr::new(0x1238)), 7).unwrap();
        let buf = writer.finish().unwrap();
        let mut reader = TraceReader::new(&buf[..]).unwrap();
        let a = reader.next_access();
        assert!(a.pointer);
        assert_eq!(reader.instructions(), 3);
        let b = reader.next_access();
        assert_eq!(b.kind, AccessKind::Store);
        assert_eq!(reader.instructions(), 7);
        assert!(reader.is_finished());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = TraceReader::new(&b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_decreasing_instructions() {
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        writer.record(Access::load(Addr::new(1)), 10).unwrap();
        let err = writer.record(Access::load(Addr::new(2)), 5).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    #[should_panic(expected = "trace exhausted")]
    fn panics_past_end() {
        let writer = TraceWriter::new(Vec::new()).unwrap();
        let buf = writer.finish().unwrap();
        let mut reader = TraceReader::new(&buf[..]).unwrap();
        let _ = reader.next_access();
    }
}
