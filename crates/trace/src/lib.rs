#![warn(missing_docs)]

//! Deterministic synthetic workload substrate for the execution-migration
//! study.
//!
//! The original evaluation in Michaud, *"Exploiting the Cache Capacity of a
//! Single-Chip Multi-Core Processor with Execution Migration"* (HPCA 2004)
//! is trace-driven: SPEC CPU2000 and Olden benchmarks are run through the
//! SimpleScalar/PISA functional simulator and the resulting memory-reference
//! streams feed the cache models and the affinity algorithm. Neither the
//! SPEC binaries nor SimpleScalar are redistributable here, so this crate
//! provides the closest synthetic equivalent: one deterministic generator
//! per paper benchmark, each modelling the *memory-reference structure* the
//! paper's analysis depends on — circular sweeps, pointer chasing over
//! linked data structures, random access within hot regions, instruction
//! footprints, and phase changes.
//!
//! Everything downstream (stack-distance profiles, affinity dynamics,
//! miss and migration counts) is a function of the reference stream alone,
//! so preserving the stream *structure* preserves the shape of the paper's
//! results even though absolute counts differ.
//!
//! # Quick example
//!
//! ```
//! use execmig_trace::{suite, Workload};
//!
//! // The paper's Table 1 benchmark suite.
//! let mut art = suite::by_name("art").expect("art is in the suite");
//! let access = art.next_access();
//! assert!(access.addr.raw() < 1 << 40);
//! assert!(art.instructions() >= 1);
//! ```

pub mod access;
pub mod addr;
pub mod gen;
pub mod io;
pub mod rng;
pub mod suite;
pub mod workload;

pub use access::{Access, AccessKind};
pub use addr::{Addr, LineAddr, LineSize};
pub use io::{TraceIoError, TraceIoResult, TraceReader, TraceWriter};
pub use rng::Rng;
pub use suite::{BenchmarkInfo, BenchmarkSuiteClass};
pub use workload::{BoxedWorkload, Workload, WorkloadEvent};
