//! A small, self-contained deterministic RNG.
//!
//! The workload generators must be bit-exact across runs and platforms so
//! that experiments are reproducible and tests can assert on exact event
//! counts. To avoid tying that guarantee to an external crate's version,
//! this module implements SplitMix64 (for seeding) and xoshiro256**
//! (for the stream), both public-domain algorithms by Blackman & Vigna.

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// ```
/// use execmig_trace::Rng;
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// One SplitMix64 step; used for seeding and as a cheap stateless mixer.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro256** requires a non-zero state; SplitMix64 output of four
        // consecutive words is never all-zero, but guard anyway.
        if s == [0; 4] {
            Rng { s: [1, 2, 3, 4] }
        } else {
            Rng { s }
        }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Used so that, e.g., a workload's pointer-graph layout and its
    /// traversal noise come from decorrelated streams.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mut sm = self.next_u64() ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` using Lemire's multiply-shift
    /// rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// True with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0);
        self.below(den) < num
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A sample from a geometric-ish distribution: the number of failures
    /// before a success with probability `1/mean`, capped at `8 * mean`.
    /// Used to draw burst lengths with a given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean == 0`.
    pub fn burst_len(&mut self, mean: u64) -> u64 {
        assert!(mean > 0);
        if mean == 1 {
            return 1;
        }
        let cap = mean * 8;
        let mut n = 1;
        while n < cap && !self.chance(1, mean) {
            n += 1;
        }
        n
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::seed_from(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::seed_from(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = Rng::seed_from(4);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_panics_on_empty() {
        Rng::seed_from(0).range(5, 5);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = Rng::seed_from(5);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from(6);
        for _ in 0..100 {
            assert!(r.chance(1, 1));
            assert!(!r.chance(0, 1));
        }
    }

    #[test]
    fn burst_len_mean_is_close() {
        let mut r = Rng::seed_from(8);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.burst_len(16)).sum();
        let mean = total as f64 / n as f64;
        assert!((12.0..20.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut base = Rng::seed_from(10);
        let mut a = base.fork(1);
        let mut b = base.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
