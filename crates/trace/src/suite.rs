//! The benchmark suite of the paper's Table 1: 13 SPEC CPU2000 and
//! 5 Olden benchmarks, each modelled by a synthetic generator whose
//! reference-stream structure matches the published signature of its
//! namesake (working-set size, circularity, randomness, code footprint,
//! phase behaviour).
//!
//! The mapping rationale per benchmark is documented on each entry of
//! [`all`]; DESIGN.md §2 records the overall substitution argument.

use crate::gen::{
    BlockPhaseParams, BlockPhaseWorkload, CodeHeavyParams, CodeHeavyWorkload, CodeWalkParams,
    HotRandomParams, HotRandomWorkload, PointerRingParams, PointerRingWorkload, RingGrowth,
    SweepParams, SweepWorkload,
};
use crate::rng::Rng;
use crate::workload::BoxedWorkload;

/// Which suite a benchmark belongs to (Table 1 groups rows this way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkSuiteClass {
    /// SPEC CPU2000.
    Spec2000,
    /// Olden (sequential versions).
    Olden,
}

impl std::fmt::Display for BenchmarkSuiteClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchmarkSuiteClass::Spec2000 => f.write_str("SPEC2000"),
            BenchmarkSuiteClass::Olden => f.write_str("Olden"),
        }
    }
}

/// The expected qualitative outcome for Table 2's L2-miss ratio, from the
/// paper. Used by tests and EXPERIMENTS.md to check reproduction shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperOutcome {
    /// Migration clearly removes L2 misses (ratio well below 1).
    Improves,
    /// Migration leaves L2 misses essentially unchanged (ratio ≈ 1).
    Neutral,
    /// Migration adds L2 misses (ratio above 1).
    Degrades,
}

/// Static description of one suite benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkInfo {
    /// Short name matching the paper's tables (without the SPEC number).
    pub name: &'static str,
    /// SPEC or Olden.
    pub class: BenchmarkSuiteClass,
    /// The paper's Table 2 L2-miss ratio for this benchmark.
    pub paper_ratio: f64,
    /// The qualitative outcome the paper reports.
    pub paper_outcome: PaperOutcome,
    /// One-line description of the synthetic model used.
    pub model: &'static str,
}

/// Seed namespace for suite workloads, so every benchmark gets a distinct
/// deterministic stream.
const SUITE_SEED: u64 = 0x45_4d_49_47; // "EMIG"

fn seed_for(name: &str) -> u64 {
    let mut h = SUITE_SEED;
    for b in name.bytes() {
        h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
    }
    h
}

/// All 18 benchmarks, in Table 1 order.
pub fn all() -> Vec<BenchmarkInfo> {
    use BenchmarkSuiteClass::{Olden, Spec2000};
    use PaperOutcome::{Degrades, Improves, Neutral};
    vec![
        BenchmarkInfo {
            name: "gzip",
            class: Spec2000,
            paper_ratio: 1.01,
            paper_outcome: Neutral,
            model: "random access in a 256 KB sliding window + runs (not splittable)",
        },
        BenchmarkInfo {
            name: "swim",
            class: Spec2000,
            paper_ratio: 1.00,
            paper_outcome: Neutral,
            model: "dense sweeps over 8x2 MB arrays (circular, exceeds 4xL2)",
        },
        BenchmarkInfo {
            name: "mgrid",
            class: Spec2000,
            paper_ratio: 1.00,
            paper_outcome: Neutral,
            model: "multigrid sweeps, mixed strides over 4 MB+1 MB+256 KB",
        },
        BenchmarkInfo {
            name: "vpr",
            class: Spec2000,
            paper_ratio: 1.60,
            paper_outcome: Degrades,
            model: "random placement swaps in 256 KB + very rare 4 MB excursions",
        },
        BenchmarkInfo {
            name: "gcc",
            class: Spec2000,
            paper_ratio: 0.95,
            paper_outcome: Neutral,
            model: "2.5 MB code walk + 512 KB data (instruction-dominated)",
        },
        BenchmarkInfo {
            name: "art",
            class: Spec2000,
            paper_ratio: 0.03,
            paper_outcome: Improves,
            model: "dense sweeps over 2x768 KB neural-net arrays (circular 1.5 MB)",
        },
        BenchmarkInfo {
            name: "mcf",
            class: Spec2000,
            paper_ratio: 0.67,
            paper_outcome: Improves,
            model: "1.6 MB arc-list ring with 20% random detours and revisits",
        },
        BenchmarkInfo {
            name: "crafty",
            class: Spec2000,
            paper_ratio: 1.13,
            paper_outcome: Degrades,
            model: "2 MB loopy code walk + rare random 2 MB hash probes",
        },
        BenchmarkInfo {
            name: "ammp",
            class: Spec2000,
            paper_ratio: 0.17,
            paper_outcome: Improves,
            model: "per-timestep sweeps over 1.75 MB molecule data with light noise",
        },
        BenchmarkInfo {
            name: "parser",
            class: Spec2000,
            paper_ratio: 1.00,
            paper_outcome: Neutral,
            model: "random dictionary probes over 1.5 MB with sequential runs",
        },
        BenchmarkInfo {
            name: "vortex",
            class: Spec2000,
            paper_ratio: 1.10,
            paper_outcome: Degrades,
            model: "1.5 MB code walk (hot core resident) + 256 KB object data",
        },
        BenchmarkInfo {
            name: "bzip2",
            class: Spec2000,
            paper_ratio: 0.35,
            paper_outcome: Improves,
            model: "repeated passes over 900 KB blocks, phase change per block",
        },
        BenchmarkInfo {
            name: "twolf",
            class: Spec2000,
            paper_ratio: 1.00,
            paper_outcome: Neutral,
            model: "random access in a 640 KB placement grid (slightly over one L2)",
        },
        BenchmarkInfo {
            name: "bh",
            class: Olden,
            paper_ratio: 2.16,
            paper_outcome: Degrades,
            model: "octree passes over 288 KB (fits one L2; migrations only hurt)",
        },
        BenchmarkInfo {
            name: "bisort",
            class: Olden,
            paper_ratio: 1.08,
            paper_outcome: Degrades,
            model: "384 KB tree ring re-linked every pass (order keeps changing)",
        },
        BenchmarkInfo {
            name: "em3d",
            class: Olden,
            paper_ratio: 0.14,
            paper_outcome: Improves,
            model: "1.1 MB bipartite-graph ring traversed in fixed order with revisits",
        },
        BenchmarkInfo {
            name: "health",
            class: Olden,
            paper_ratio: 0.14,
            paper_outcome: Improves,
            model: "growing hierarchy of patient lists, 640 KB -> 1.25 MB",
        },
        BenchmarkInfo {
            name: "mst",
            class: Olden,
            paper_ratio: 1.00,
            paper_outcome: Neutral,
            model: "hash-bucket probes over 6 MB (random, exceeds 4xL2)",
        },
    ]
}

/// Info for one benchmark by name.
pub fn info(name: &str) -> Option<BenchmarkInfo> {
    all().into_iter().find(|b| b.name == name)
}

/// Instantiates the workload for a suite benchmark by name.
///
/// Returns `None` for unknown names.
///
/// ```
/// use execmig_trace::{suite, Workload};
/// let mut w = suite::by_name("mcf").unwrap();
/// assert_eq!(w.name(), "mcf");
/// let _ = w.next_access();
/// ```
pub fn by_name(name: &str) -> Option<BoxedWorkload> {
    let seed = seed_for(name);
    let w: BoxedWorkload = match name {
        "gzip" => Box::new(HotRandomWorkload::new(
            "gzip",
            HotRandomParams {
                hot_bytes: 256 << 10,
                cold_bytes: 4 << 20,
                seq_run_permille: 250,
                run_lines_mean: 6,
                cold_ppm: 100,
                store_permille: 250,
                instr_per_access_x256: (4 * 256) + 128, // 4.5 instr/access
                region: 0,
                // Dictionary window slides: ~1 new line per 775 instr,
                // matching the compulsory-miss-dominated L2 behaviour.
                slide_every: 172,
            },
            Rng::seed_from(seed),
        )),
        "swim" => Box::new(SweepWorkload::new(
            "swim",
            SweepParams {
                arrays: vec![2 << 20; 8],
                strides: vec![8],
                store_permille: 250,
                instr_per_access_x256: 6 * 256,
                noise_permille: 0,
            },
            seed,
        )),
        "mgrid" => Box::new(SweepWorkload::new(
            "mgrid",
            SweepParams {
                arrays: vec![4 << 20, 1 << 20, 256 << 10],
                strides: vec![8, 64, 512],
                store_permille: 200,
                instr_per_access_x256: 5 * 256,
                noise_permille: 5,
            },
            seed,
        )),
        "vpr" => Box::new(HotRandomWorkload::new(
            "vpr",
            HotRandomParams {
                hot_bytes: 256 << 10,
                cold_bytes: 4 << 20,
                seq_run_permille: 60,
                run_lines_mean: 3,
                // Very rare excursions: the placement core fits the L2,
                // so L2 misses are ~1 per 10^5 instructions, as in the
                // paper's Table 2 (one per 90k instructions).
                cold_ppm: 40,
                store_permille: 250,
                instr_per_access_x256: 4 * 256,
                region: 0,
                slide_every: 0,
            },
            Rng::seed_from(seed),
        )),
        "gcc" => Box::new(CodeHeavyWorkload::new(CodeHeavyParams {
            name: "gcc",
            code: CodeWalkParams {
                footprint_bytes: 2560 << 10,
                func_lines_mean: 10,
                // Most control transfers stay in a hot ~200 KB code
                // subset (fits the L2); the cold tail supplies the L2
                // misses, as in the real gcc's flat-but-local profile.
                hot_permille: 880,
                hot_set_permille: 80,
                loop_repeat_mean: 2,
            },
            data: HotRandomParams {
                hot_bytes: 512 << 10,
                cold_bytes: 2 << 20,
                seq_run_permille: 200,
                run_lines_mean: 5,
                cold_ppm: 4000,
                store_permille: 250,
                instr_per_access_x256: 3 * 256,
                region: 0,
                slide_every: 0,
            },
            seed,
        })),
        "art" => Box::new(SweepWorkload::new(
            "art",
            SweepParams {
                arrays: vec![768 << 10, 768 << 10],
                strides: vec![8],
                store_permille: 120,
                instr_per_access_x256: 256 + 64, // 1.25 instr/access
                noise_permille: 0,
            },
            seed,
        )),
        "mcf" => Box::new(PointerRingWorkload::new(
            "mcf",
            PointerRingParams {
                // 1.6 MB of arcs: each split subset fits a 512 KB L2,
                // but the random jumps (noise) land in remote subsets
                // and keep the benefit partial, as in the paper.
                nodes: 26 << 10,
                node_lines: 1,
                noise_permille: 200,
                store_permille: 200,
                instr_per_access_x256: 2 * 256,
                growth: None,
                relink_every_passes: None,
                revisit: Some((350, 768)),
            },
            seed,
        )),
        "crafty" => Box::new(CodeHeavyWorkload::new(CodeHeavyParams {
            name: "crafty",
            code: CodeWalkParams {
                footprint_bytes: 2 << 20,
                func_lines_mean: 14,
                hot_permille: 910,
                hot_set_permille: 60,
                loop_repeat_mean: 3,
            },
            data: HotRandomParams {
                hot_bytes: 192 << 10,
                cold_bytes: 2 << 20,
                seq_run_permille: 120,
                run_lines_mean: 4,
                cold_ppm: 9_000,
                store_permille: 180,
                instr_per_access_x256: 5 * 256,
                region: 0,
                slide_every: 0,
            },
            seed,
        })),
        "ammp" => Box::new(SweepWorkload::new(
            "ammp",
            SweepParams {
                arrays: vec![1792 << 10],
                strides: vec![16],
                store_permille: 200,
                instr_per_access_x256: 2 * 256,
                noise_permille: 20,
            },
            seed,
        )),
        "parser" => Box::new(HotRandomWorkload::new(
            "parser",
            HotRandomParams {
                // The dictionary and parse structures exceed one L2
                // but the access pattern is random-like: no benefit.
                hot_bytes: 1536 << 10,
                cold_bytes: 2 << 20,
                seq_run_permille: 300,
                run_lines_mean: 4,
                cold_ppm: 1000,
                store_permille: 220,
                instr_per_access_x256: 6 * 256,
                region: 0,
                slide_every: 0,
            },
            Rng::seed_from(seed),
        )),
        "vortex" => Box::new(CodeHeavyWorkload::new(CodeHeavyParams {
            name: "vortex",
            code: CodeWalkParams {
                footprint_bytes: 1536 << 10,
                func_lines_mean: 12,
                hot_permille: 900,
                hot_set_permille: 90,
                loop_repeat_mean: 2,
            },
            data: HotRandomParams {
                hot_bytes: 256 << 10,
                cold_bytes: 2 << 20,
                seq_run_permille: 250,
                run_lines_mean: 6,
                cold_ppm: 1500,
                store_permille: 300,
                instr_per_access_x256: 4 * 256,
                region: 0,
                slide_every: 0,
            },
            seed,
        })),
        "bzip2" => Box::new(BlockPhaseWorkload::new(
            "bzip2",
            BlockPhaseParams {
                block_bytes: 900 << 10,
                blocks: 8,
                passes_per_block: 12,
                random_permille: 80,
                store_permille: 250,
                instr_per_access_x256: 5 * 256,
                stride: 16,
            },
            seed,
        )),
        "twolf" => Box::new(HotRandomWorkload::new(
            "twolf",
            HotRandomParams {
                // Slightly exceeds one 512 KB L2: L2 misses keep the
                // transition filter live, migrations are frequent but
                // harmless because inactive L2s stay warm (valid
                // broadcast-refreshed copies are usable locally).
                hot_bytes: 640 << 10,
                cold_bytes: 0,
                seq_run_permille: 100,
                run_lines_mean: 3,
                cold_ppm: 0,
                store_permille: 220,
                instr_per_access_x256: 3 * 256,
                region: 0,
                slide_every: 0,
            },
            Rng::seed_from(seed),
        )),
        "bh" => Box::new(PointerRingWorkload::new(
            "bh",
            PointerRingParams {
                nodes: 4608, // 288 KB octree
                node_lines: 1,
                noise_permille: 30,
                store_permille: 120,
                instr_per_access_x256: 9 * 256,
                growth: None,
                relink_every_passes: None,
                revisit: Some((250, 64)),
            },
            seed,
        )),
        "bisort" => Box::new(PointerRingWorkload::new(
            "bisort",
            PointerRingParams {
                // 512 KB of tree nodes: borderline for one L2, and the
                // bitonic phases re-link the traversal every pass, so
                // the affinity split never stabilises — migrations only
                // add cold refills (paper ratio 1.08).
                // 384 KB of tree nodes: resident in one L2 once warm,
                // so migrations only cost; the bitonic re-linking keeps
                // the affinity mechanism from ever finding a stable
                // split (paper ratio 1.08).
                nodes: 6 << 10,
                node_lines: 1,
                noise_permille: 120,
                store_permille: 300,
                instr_per_access_x256: 10 * 256,
                growth: None,
                relink_every_passes: Some(1),
                revisit: Some((250, 96)),
            },
            seed,
        )),
        "em3d" => Box::new(PointerRingWorkload::new(
            "em3d",
            PointerRingParams {
                nodes: 18 << 10, // 1.1 MB bipartite graph
                node_lines: 1,
                noise_permille: 0,
                store_permille: 150,
                instr_per_access_x256: 4 * 256,
                growth: None,
                relink_every_passes: None,
                // Neighbour-list reuse: misses the DL1, hits the L2.
                revisit: Some((500, 1200)),
            },
            seed,
        )),
        "health" => Box::new(PointerRingWorkload::new(
            "health",
            PointerRingParams {
                nodes: 20 << 10, // grows to 1.25 MB
                node_lines: 1,
                noise_permille: 0,
                store_permille: 150,
                instr_per_access_x256: 4 * 256,
                growth: Some(RingGrowth {
                    start: 10 << 10,
                    per_pass: 256,
                }),
                relink_every_passes: None,
                revisit: Some((500, 1200)),
            },
            seed,
        )),
        "mst" => Box::new(HotRandomWorkload::new(
            "mst",
            HotRandomParams {
                hot_bytes: 6 << 20,
                cold_bytes: 0,
                seq_run_permille: 150,
                run_lines_mean: 4,
                cold_ppm: 0,
                store_permille: 150,
                instr_per_access_x256: 5 * 256,
                region: 0,
                slide_every: 0,
            },
            Rng::seed_from(seed),
        )),
        _ => return None,
    };
    Some(w)
}

/// Names of all suite benchmarks, in Table 1 order.
pub fn names() -> Vec<&'static str> {
    all().into_iter().map(|b| b.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn suite_has_18_benchmarks() {
        let infos = all();
        assert_eq!(infos.len(), 18);
        let spec = infos
            .iter()
            .filter(|b| b.class == BenchmarkSuiteClass::Spec2000)
            .count();
        assert_eq!(spec, 13);
        assert_eq!(infos.len() - spec, 5);
    }

    #[test]
    fn every_info_has_a_workload() {
        for b in all() {
            let mut w = by_name(b.name).unwrap_or_else(|| panic!("{} missing", b.name));
            assert_eq!(w.name(), b.name);
            let _ = w.next_access();
        }
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(by_name("nonesuch").is_none());
        assert!(info("nonesuch").is_none());
    }

    #[test]
    fn outcomes_match_ratios() {
        for b in all() {
            match b.paper_outcome {
                PaperOutcome::Improves => assert!(b.paper_ratio < 0.95, "{}", b.name),
                PaperOutcome::Neutral => {
                    assert!((0.9..=1.05).contains(&b.paper_ratio), "{}", b.name)
                }
                PaperOutcome::Degrades => assert!(b.paper_ratio > 1.05, "{}", b.name),
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for name in names() {
            let mut a = by_name(name).unwrap();
            let mut b = by_name(name).unwrap();
            for i in 0..500 {
                assert_eq!(a.next_access(), b.next_access(), "{name} step {i}");
            }
        }
    }

    #[test]
    fn workloads_make_instruction_progress() {
        for name in names() {
            let mut w = by_name(name).unwrap();
            for _ in 0..2000 {
                let _ = w.next_access();
            }
            assert!(
                w.instructions() > 1000,
                "{name} only retired {} instructions",
                w.instructions()
            );
        }
    }

    #[test]
    fn seeds_differ_between_benchmarks() {
        assert_ne!(seed_for("gzip"), seed_for("swim"));
        assert_ne!(seed_for("art"), seed_for("mcf"));
    }
}
