//! The [`Workload`] trait: a deterministic, effectively infinite stream of
//! memory accesses with dynamic-instruction accounting.
//!
//! The paper reports every event count as *instructions per event*
//! (Tables 1 and 2), so generators must account for the instructions
//! retired between memory references, not just the references themselves.

use crate::access::Access;

/// A deterministic generator of memory accesses.
///
/// Implementations are infinite streams: `next_access` never ends. The
/// caller decides when to stop, normally when [`instructions`] reaches a
/// budget:
///
/// ```
/// use execmig_trace::{suite, Workload};
/// let mut w = suite::by_name("gzip").unwrap();
/// let mut refs = 0u64;
/// while w.instructions() < 10_000 {
///     let _a = w.next_access();
///     refs += 1;
/// }
/// assert!(refs > 0);
/// ```
///
/// [`instructions`]: Workload::instructions
pub trait Workload {
    /// A short, stable identifier (e.g. `"art"`, `"circular"`).
    fn name(&self) -> &str;

    /// Produces the next access and advances the instruction counter by
    /// however many instructions retire up to and including this access.
    fn next_access(&mut self) -> Access;

    /// Total dynamic instructions retired so far.
    fn instructions(&self) -> u64;

    /// Appends up to `max_events` events to `buf`, stopping early once
    /// [`instructions`](Workload::instructions) reaches `until`; returns
    /// the number appended.
    ///
    /// The stopping rule is exactly the per-step run loop's
    /// (`while instructions() < until { next_access() }`): the event
    /// that crosses `until` is *included*, so draining a workload
    /// through repeated `fill_block` calls yields the same event
    /// sequence — same accesses, same per-event instruction counts —
    /// as per-step consumption. Block-stepping callers rely on that to
    /// stay bit-identical with `Machine::step`.
    ///
    /// This is a provided method: each concrete workload monomorphizes
    /// its own copy, so a `dyn Workload` caller pays one virtual call
    /// per *block* and the generator loop runs devirtualized inside.
    fn fill_block(&mut self, buf: &mut Vec<WorkloadEvent>, until: u64, max_events: usize) -> usize {
        let mut filled = 0;
        while filled < max_events && self.instructions() < until {
            let access = self.next_access();
            buf.push(WorkloadEvent {
                access,
                instructions: self.instructions(),
            });
            filled += 1;
        }
        filled
    }
}

/// One workload event as buffered by block-stepping drivers: the access
/// plus the workload's total retired-instruction count *after* it (the
/// value [`Workload::instructions`] returns at that point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadEvent {
    /// The access.
    pub access: Access,
    /// Total dynamic instructions retired up to and including it.
    pub instructions: u64,
}

/// A boxed, owned workload.
pub type BoxedWorkload = Box<dyn Workload + Send>;

impl Workload for BoxedWorkload {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_access(&mut self) -> Access {
        (**self).next_access()
    }

    fn instructions(&self) -> u64 {
        (**self).instructions()
    }

    // Forwarded explicitly: without this, the box would run the
    // *default* body here — one virtual `next_access` per event —
    // instead of dispatching once into the concrete workload's
    // monomorphized block filler.
    fn fill_block(&mut self, buf: &mut Vec<WorkloadEvent>, until: u64, max_events: usize) -> usize {
        (**self).fill_block(buf, until, max_events)
    }
}

/// Fixed-point accumulator that converts a fractional mean
/// instructions-per-access into an exact deterministic integer sequence.
///
/// Means are expressed in 1/256ths of an instruction, so a mean of 2.5
/// instructions is `InstrBudget::new(640)`.
///
/// ```
/// use execmig_trace::workload::InstrBudget;
/// let mut b = InstrBudget::new(640); // 2.5 instructions per access
/// let total: u64 = (0..1000).map(|_| b.step()).sum();
/// assert_eq!(total, 2500);
/// ```
#[derive(Debug, Clone)]
pub struct InstrBudget {
    per_access_x256: u64,
    acc_x256: u64,
    total: u64,
}

impl InstrBudget {
    /// Creates a budget with the given mean, in 1/256ths of an
    /// instruction per access.
    ///
    /// # Panics
    ///
    /// Panics if `per_access_x256 == 0`.
    pub fn new(per_access_x256: u64) -> Self {
        assert!(per_access_x256 > 0, "instructions per access must be > 0");
        InstrBudget {
            per_access_x256,
            acc_x256: 0,
            total: 0,
        }
    }

    /// Convenience constructor from whole instructions per access.
    pub fn per_access(n: u64) -> Self {
        InstrBudget::new(n * 256)
    }

    /// Advances by one access; returns the integer number of instructions
    /// charged for it.
    pub fn step(&mut self) -> u64 {
        self.acc_x256 += self.per_access_x256;
        let instrs = self.acc_x256 >> 8;
        self.acc_x256 &= 0xff;
        self.total += instrs;
        instrs
    }

    /// Charges extra instructions (e.g. for a computation-only phase).
    pub fn charge(&mut self, instrs: u64) {
        self.total += instrs;
    }

    /// Total instructions charged so far.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use crate::addr::Addr;

    struct Fixed {
        n: u64,
    }

    impl Workload for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }

        fn next_access(&mut self) -> Access {
            self.n += 1;
            Access::load(Addr::new(self.n * 64))
        }

        fn instructions(&self) -> u64 {
            self.n * 2
        }
    }

    #[test]
    fn boxed_workload_delegates() {
        let mut b: BoxedWorkload = Box::new(Fixed { n: 0 });
        assert_eq!(b.name(), "fixed");
        let a = b.next_access();
        assert_eq!(a.kind, AccessKind::Load);
        assert_eq!(b.instructions(), 2);
    }

    #[test]
    fn instr_budget_integer_mean() {
        let mut b = InstrBudget::per_access(3);
        for _ in 0..10 {
            assert_eq!(b.step(), 3);
        }
        assert_eq!(b.total(), 30);
    }

    #[test]
    fn instr_budget_fractional_mean_exact() {
        // 1.25 instructions per access: every 4th access charges 2.
        let mut b = InstrBudget::new(320);
        let seq: Vec<u64> = (0..8).map(|_| b.step()).collect();
        assert_eq!(seq.iter().sum::<u64>(), 10);
        assert_eq!(b.total(), 10);
    }

    #[test]
    fn instr_budget_sub_one_mean() {
        // 0.5 instructions per access: alternates 0, 1.
        let mut b = InstrBudget::new(128);
        let total: u64 = (0..1000).map(|_| b.step()).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn instr_budget_charge_adds() {
        let mut b = InstrBudget::per_access(1);
        b.step();
        b.charge(100);
        assert_eq!(b.total(), 101);
    }

    #[test]
    #[should_panic(expected = "must be > 0")]
    fn instr_budget_zero_panics() {
        InstrBudget::new(0);
    }

    /// Draining through fill_block must replay the per-step loop
    /// exactly: same accesses, same post-event instruction counts,
    /// including the final event that crosses the budget.
    #[test]
    fn fill_block_matches_per_step_consumption() {
        let budget = 101; // odd on purpose: the last event overshoots
        let mut per_step = Fixed { n: 0 };
        let mut expected = Vec::new();
        while per_step.instructions() < budget {
            let access = per_step.next_access();
            expected.push(WorkloadEvent {
                access,
                instructions: per_step.instructions(),
            });
        }

        for block in [1usize, 7, 4096] {
            let mut blocked = Fixed { n: 0 };
            let mut got = Vec::new();
            loop {
                let filled = blocked.fill_block(&mut got, budget, block);
                if filled == 0 {
                    break;
                }
                assert!(filled <= block);
            }
            assert_eq!(got, expected, "block size {block}");
            assert_eq!(blocked.instructions(), per_step.instructions());
        }
    }

    /// Once the budget is reached, fill_block appends nothing.
    #[test]
    fn fill_block_stops_at_budget() {
        let mut w = Fixed { n: 0 };
        let mut buf = Vec::new();
        while w.fill_block(&mut buf, 10, 4) > 0 {}
        let len = buf.len();
        assert_eq!(w.fill_block(&mut buf, 10, 4), 0);
        assert_eq!(buf.len(), len);
    }

    /// The boxed forwarding returns the same events as the concrete
    /// type (and respects max_events).
    #[test]
    fn boxed_workload_forwards_fill_block() {
        let mut direct = Fixed { n: 0 };
        let mut boxed: BoxedWorkload = Box::new(Fixed { n: 0 });
        let (mut a, mut b) = (Vec::new(), Vec::new());
        assert_eq!(direct.fill_block(&mut a, 20, 3), 3);
        assert_eq!(boxed.fill_block(&mut b, 20, 3), 3);
        assert_eq!(a, b);
    }
}
