//! Bring your own workload: implement [`Workload`] for a custom access
//! pattern and evaluate it on the migration machine.
//!
//! The example models a two-phase scientific kernel — a gather over a
//! large index array followed by a stencil sweep — and asks whether
//! execution migration would help it.
//!
//! Run with: `cargo run --release --example custom_workload`

use execution_migration::machine::{Machine, MachineConfig};
use execution_migration::trace::workload::InstrBudget;
use execution_migration::trace::{Access, Addr, Rng, Workload};

/// A gather/stencil kernel over ~1.6 MB of data: the stencil part is
/// circular (splittable), the gather part is random (not).
struct GatherStencil {
    rng: Rng,
    budget: InstrBudget,
    /// Stencil cursor over the grid.
    cursor: u64,
    /// True while in the stencil phase.
    in_stencil: bool,
    /// Accesses left in the current phase.
    phase_left: u64,
}

const GRID_BYTES: u64 = 1400 << 10;
const GRID_BASE: u64 = 1 << 33;
const STENCIL_PHASE: u64 = 1_500_000;
const GATHER_PHASE: u64 = 60_000;

impl GatherStencil {
    fn new(seed: u64) -> Self {
        GatherStencil {
            rng: Rng::seed_from(seed),
            budget: InstrBudget::per_access(3),
            cursor: 0,
            in_stencil: true,
            phase_left: STENCIL_PHASE,
        }
    }
}

impl Workload for GatherStencil {
    fn name(&self) -> &str {
        "gather_stencil"
    }

    fn next_access(&mut self) -> Access {
        self.budget.step();
        if self.phase_left == 0 {
            // Alternate phases: stencil -> gather -> stencil -> …
            self.in_stencil = !self.in_stencil;
            self.phase_left = if self.in_stencil {
                STENCIL_PHASE
            } else {
                GATHER_PHASE
            };
        }
        self.phase_left -= 1;
        let addr = if self.in_stencil {
            // Stencil: sequential sweep, wrapping at the grid end.
            let a = GRID_BASE + self.cursor;
            self.cursor = (self.cursor + 8) % GRID_BYTES;
            a
        } else {
            // Gather: random indexed reads over the same grid.
            GRID_BASE + self.rng.below(GRID_BYTES / 64) * 64
        };
        Access::load(Addr::new(addr))
    }

    fn instructions(&self) -> u64 {
        self.budget.total()
    }
}

fn main() {
    let instructions = 30_000_000u64;
    println!(
        "custom workload: 1.6 MB gather/stencil kernel, {} M instructions\n",
        instructions / 1_000_000
    );

    let mut baseline = Machine::new(MachineConfig::single_core());
    baseline.run(&mut GatherStencil::new(42), instructions);

    let mut migration = Machine::new(MachineConfig::four_core_migration());
    migration.run(&mut GatherStencil::new(42), instructions);

    let b = baseline.stats();
    let m = migration.stats();
    println!(
        "baseline : L2 miss every {:>6.0} instructions",
        b.instr_per_l2_miss()
    );
    println!(
        "migration: L2 miss every {:>6.0} instructions, migration every {:>8.0}",
        m.instr_per_l2_miss(),
        m.instr_per_migration()
    );
    let ratio =
        (m.l2_misses as f64 / m.instructions as f64) / (b.l2_misses as f64 / b.instructions as f64);
    println!(
        "L2-miss ratio: {ratio:.2} ({}).",
        if ratio < 0.9 {
            "the stencil phase is splittable - migration helps"
        } else {
            "no benefit"
        }
    );
}
