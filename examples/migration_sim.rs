//! Full-machine simulation of one benchmark: the Table 2 experiment for
//! a single workload, plus the break-even migration penalty.
//!
//! Run with: `cargo run --release --example migration_sim -- [bench] [instr]`
//! e.g.      `cargo run --release --example migration_sim -- art 20000000`

use execution_migration::machine::perf::break_even_pmig;
use execution_migration::machine::{Machine, MachineConfig, PerfModel};
use execution_migration::trace::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("art");
    let instructions: u64 = args
        .get(1)
        .map(|s| s.parse().expect("instruction count"))
        .unwrap_or(20_000_000);

    let info = suite::info(bench).unwrap_or_else(|| {
        eprintln!(
            "unknown benchmark {bench:?}; choose one of {:?}",
            suite::names()
        );
        std::process::exit(1);
    });
    println!("benchmark: {bench} ({})", info.model);
    println!(
        "simulating 2 x {} M instructions...\n",
        instructions / 1_000_000
    );

    // Baseline: one core, one 512 KB L2.
    let mut baseline = Machine::new(MachineConfig::single_core());
    let mut w = suite::by_name(bench).expect("suite benchmark");
    baseline.run(&mut *w, instructions);

    // Migration machine: 4 cores, §4.2 controller.
    let mut migration = Machine::new(MachineConfig::four_core_migration());
    let mut w = suite::by_name(bench).expect("suite benchmark");
    migration.run(&mut *w, instructions);

    let b = baseline.stats();
    let m = migration.stats();
    println!("                      baseline    migration");
    println!(
        "instr / L1 miss     {:>10.0}   {:>10.0}",
        b.instr_per_l1_miss(),
        m.instr_per_l1_miss()
    );
    println!(
        "instr / L2 miss     {:>10.0}   {:>10.0}",
        b.instr_per_l2_miss(),
        m.instr_per_l2_miss()
    );
    println!("migrations          {:>10}   {:>10}", "-", m.migrations);
    let ratio =
        (m.l2_misses as f64 / m.instructions as f64) / (b.l2_misses as f64 / b.instructions as f64);
    println!(
        "\nL2-miss ratio (migration/baseline): {ratio:.2}  (paper reports {:.2})",
        info.paper_ratio
    );

    match break_even_pmig(b, m) {
        Some(be) if be > 1.0 => {
            println!("break-even P_mig: {be:.1} — migration wins whenever a migration");
            println!("costs less than {be:.1} L2-miss/L3-hit penalties");
            for pmig in [5.0, 10.0, 30.0, be] {
                let model = PerfModel {
                    pmig,
                    ..PerfModel::default()
                };
                println!(
                    "  speedup at P_mig = {pmig:>5.1}: {:.3}x",
                    model.speedup(b, m)
                );
            }
        }
        Some(be) => println!("break-even P_mig: {be:.1} — migration never profitable here"),
        None => println!("no migrations occurred — nothing to trade off"),
    }
}
