//! Watch the migration controller learn: a windowed timeline of L2
//! misses, migrations, and the active core.
//!
//! Run with: `cargo run --release --example migration_timeline -- [bench] [instr]`
//!
//! Pass `--json` to dump the full sample series (per-core occupancy,
//! transition flips, affinity-cache hit rate, …) as a JSON array for
//! plotting.

use execution_migration::machine::timeline::record;
use execution_migration::machine::{Machine, MachineConfig};
use execution_migration::obs::ToJson;
use execution_migration::trace::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let args: Vec<String> = args.into_iter().filter(|a| a != "--json").collect();
    let bench = args.first().map(String::as_str).unwrap_or("art");
    let instructions: u64 = args
        .get(1)
        .map(|s| s.parse().expect("instruction count"))
        .unwrap_or(20_000_000);
    if suite::info(bench).is_none() {
        eprintln!(
            "unknown benchmark {bench:?}; choose one of {:?}",
            suite::names()
        );
        std::process::exit(1);
    }

    let window = instructions / 40;
    let mut machine = Machine::new(MachineConfig::four_core_migration());
    let mut workload = suite::by_name(bench).unwrap();
    let samples = record(&mut machine, &mut *workload, instructions, window);

    if json {
        println!("{}", samples.to_json().pretty());
        return;
    }
    println!(
        "{bench}: {} windows of {} instructions",
        samples.len(),
        window
    );
    println!("window  core  migrations  L2 misses/kinstr");
    let max_density = samples
        .iter()
        .map(|s| s.l2_miss_density(window))
        .fold(1e-9, f64::max);
    for (i, s) in samples.iter().enumerate() {
        let density = s.l2_miss_density(window);
        let bar_len = (density / max_density * 40.0).round() as usize;
        println!(
            "{i:>5}    C{}  {:>9}  {:>8.2} |{}|",
            s.active_core,
            s.migrations,
            density,
            "#".repeat(bar_len)
        );
    }
    println!(
        "\ntotal: {} migrations, {} L2 misses over {} M instructions",
        machine.stats().migrations,
        machine.stats().l2_misses,
        instructions / 1_000_000
    );
    println!("(on splittable benchmarks the bars collapse once the split settles)");
}
