//! Quickstart: split a working set with the affinity algorithm.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! This reproduces the paper's §3.3 observation in miniature: a
//! *circular* reference stream (the common case after L1 filtering) is
//! automatically split into two balanced halves with very few
//! transitions, while a *random* stream is not splittable — and the
//! transition filter keeps its transition rate low anyway.

use execution_migration::core::{Side, Splitter2, SplitterConfig};
use execution_migration::trace::gen::CircularWorkload;
use execution_migration::trace::{Rng, Workload};

fn main() {
    let n = 4000u64;

    // --- A splittable stream: Circular(4000), |R| = 100 -------------
    let mut splitter = Splitter2::new(SplitterConfig {
        r_window: 100,
        filter_bits: None, // raw affinity signs, as in Figure 3
        ..SplitterConfig::default()
    });
    let mut workload = CircularWorkload::new(n);
    for _ in 0..1_000_000 {
        let line = workload.next_access().addr.raw() / 64;
        splitter.on_reference(line);
    }
    let positive = splitter.positive_fraction(0..n);
    println!("Circular({n}) after 1M references:");
    println!("  fraction of elements with positive affinity: {positive:.3}");
    println!(
        "  transitions per reference: {:.5} (paper: optimal is 1/2000 = 0.0005)",
        splitter.stats().transition_rate()
    );

    // Where did each element land? Sample a few.
    for e in [0u64, 1000, 2000, 3000, 3999] {
        let side = splitter
            .affinity_of(e)
            .map(Side::of)
            .expect("element was referenced");
        println!("  element {e:>4} -> subset {side}");
    }

    // --- An unsplittable stream: uniform random ---------------------
    let mut filtered = Splitter2::new(SplitterConfig {
        r_window: 100,
        filter_bits: Some(20), // §3.4 transition filter
        ..SplitterConfig::default()
    });
    let mut rng = Rng::seed_from(7);
    for _ in 0..1_000_000 {
        filtered.on_reference(rng.below(n));
    }
    println!("\nUniform random over {n} lines, 20-bit transition filter:");
    println!(
        "  transitions per reference: {:.5} (filter suppresses useless migrations)",
        filtered.stats().transition_rate()
    );
}
