//! Record a reference trace to a file and replay it through the
//! machine — the path a user takes to evaluate execution migration on
//! their own application's trace.
//!
//! Run with: `cargo run --release --example record_replay`

use execution_migration::machine::{Machine, MachineConfig};
use execution_migration::trace::{suite, TraceReader, TraceWriter, Workload};
use std::fs::File;
use std::io::BufReader;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("execmig_demo.emt");
    let instructions = 5_000_000u64;

    // 1. Record: any Workload (here a suite benchmark; in practice a
    //    Pin/DynamoRIO-style tool would produce the same format).
    let mut workload = suite::by_name("health").unwrap();
    let mut writer = TraceWriter::new(File::create(&path)?)?;
    writer.record_workload(&mut *workload, instructions)?;
    let records = writer.records();
    writer.finish()?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "recorded {records} accesses / {} M instructions to {} ({:.1} MB, {:.2} B/access)",
        instructions / 1_000_000,
        path.display(),
        bytes as f64 / 1e6,
        bytes as f64 / records as f64
    );

    // 2. Replay through both machines.
    let mut results = Vec::new();
    for (label, config) in [
        ("1-core baseline", MachineConfig::single_core()),
        ("4-core migration", MachineConfig::four_core_migration()),
    ] {
        let mut reader = TraceReader::new(BufReader::new(File::open(&path)?))?;
        let mut machine = Machine::new(config);
        while !reader.is_finished() {
            let access = reader.next_access();
            machine.step_tagged(
                access.kind,
                execution_migration::trace::LineSize::DEFAULT.line_of(access.addr),
                reader.instructions(),
                access.pointer,
            );
        }
        let s = machine.stats();
        println!(
            "{label:18}: {} L2 misses, {} migrations",
            s.l2_misses, s.migrations
        );
        results.push(s.l2_misses);
    }
    println!(
        "replayed trace shows a {:.1}x L2-miss reduction under migration",
        results[0] as f64 / results[1].max(1) as f64
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
