//! Splittability explorer: compute the Figure 4/5 stack profiles for a
//! benchmark and report whether execution migration could help it.
//!
//! Run with: `cargo run --release --example splittability_explorer -- [bench] [instr]`

use execution_migration::experiments::fig45::{run_benchmark, Fig45Config};
use execution_migration::trace::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("ammp");
    let instructions: u64 = args
        .get(1)
        .map(|s| s.parse().expect("instruction count"))
        .unwrap_or(20_000_000);

    if suite::info(bench).is_none() {
        eprintln!(
            "unknown benchmark {bench:?}; choose one of {:?}",
            suite::names()
        );
        std::process::exit(1);
    }
    println!(
        "stack profiles for {bench} over {} M instructions",
        instructions / 1_000_000
    );
    println!("p1 = single LRU stack, p4 = 4-way affinity split (lower is better)\n");

    let row = run_benchmark(bench, &Fig45Config::paper(instructions));
    println!("   size      p1      p4   ");
    for &(bytes, p1, p4) in &row.points {
        // A terminal bar chart: '#' for p1, overlay '*' where p4 reaches.
        let width = 40usize;
        let b1 = (p1 * width as f64).round() as usize;
        let b4 = (p4 * width as f64).round() as usize;
        let bar: String = (0..width)
            .map(|i| match (i < b4, i < b1) {
                (true, _) => '*',
                (false, true) => '#',
                _ => ' ',
            })
            .collect();
        let label = if bytes >= 1 << 20 {
            format!("{:>4}M", bytes >> 20)
        } else {
            format!("{:>4}k", bytes >> 10)
        };
        println!("{label}   {p1:.3}   {p4:.3}  |{bar}|");
    }
    println!(
        "\ntransition rate: {:.4} per stack access (paper max: 1.34% on vpr)",
        row.transition_rate
    );
    println!("mean p1-p4 gap: {:+.3}", row.split_gain);
    if row.split_gain > 0.05 {
        println!("=> splittable: execution migration can trade migrations for L2 misses");
    } else {
        println!("=> not splittable: expect no benefit from execution migration");
    }
}
