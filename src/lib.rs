//! Execution migration on a single-chip multi-core.
//!
//! This crate is the umbrella entry point for the reproduction of
//! Michaud, *"Exploiting the Cache Capacity of a Single-Chip Multi-Core
//! Processor with Execution Migration"* (HPCA 2004). It re-exports the
//! workspace crates:
//!
//! - [`trace`] — deterministic synthetic workloads (SPEC2000/Olden models)
//! - [`cache`] — cache simulation substrate (set/fully/skewed associative
//!   caches, Mattson LRU stacks)
//! - [`core`] — the paper's contribution: the affinity algorithm,
//!   transition filter, working-set sampling, and the migration controller
//! - [`machine`] — the 4-core machine model with migration-mode coherence
//! - [`check`] — differential checking: a naive reference machine, a
//!   lockstep differ, and a trace-shrinking fuzzer
//! - [`experiments`] — runners that regenerate every table and figure
//! - [`obs`] — observability: feature-gated event tracing, metrics
//!   (counters/gauges/log-2 histograms), JSON/CSV/Prometheus exporters,
//!   run manifests, and span timers
//!
//! # Quickstart
//!
//! Split a circular working set in two with the affinity algorithm:
//!
//! ```
//! use execution_migration::core::{Splitter2, SplitterConfig};
//! use execution_migration::trace::gen::CircularWorkload;
//! use execution_migration::trace::Workload;
//!
//! let mut splitter = Splitter2::new(SplitterConfig {
//!     r_window: 100,
//!     ..SplitterConfig::default()
//! });
//! let mut w = CircularWorkload::new(4000);
//! for _ in 0..1_000_000 {
//!     let line = w.next_access().addr.raw() / 64;
//!     splitter.on_reference(line);
//! }
//! // The 4000-element working set is now split in two balanced halves.
//! let balance = splitter.positive_fraction(0..4000);
//! assert!((0.4..=0.6).contains(&balance));
//! ```

pub use execmig_cache as cache;
pub use execmig_check as check;
pub use execmig_core as core;
pub use execmig_experiments as experiments;
pub use execmig_machine as machine;
pub use execmig_obs as obs;
pub use execmig_trace as trace;
