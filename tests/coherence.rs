//! Migration-mode coherence scenarios from §2.1, driven through the
//! machine's public API with a scripted access sequence and manual
//! activity placement (no controller, 4 cores).

use execution_migration::machine::{Machine, MachineConfig, PrefetchConfig};
use execution_migration::trace::workload::InstrBudget;
use execution_migration::trace::{Access, AccessKind, Addr, LineAddr, Workload};

/// A scripted workload: replays a fixed list of accesses, 1 instruction
/// each.
struct Script {
    accesses: Vec<Access>,
    at: usize,
    budget: InstrBudget,
}

impl Script {
    fn new(accesses: Vec<Access>) -> Self {
        Script {
            accesses,
            at: 0,
            budget: InstrBudget::per_access(1),
        }
    }

    fn len(&self) -> u64 {
        self.accesses.len() as u64
    }
}

impl Workload for Script {
    fn name(&self) -> &str {
        "script"
    }

    fn next_access(&mut self) -> Access {
        let a = self.accesses[self.at % self.accesses.len()];
        self.at += 1;
        self.budget.step();
        a
    }

    fn instructions(&self) -> u64 {
        self.budget.total()
    }
}

fn four_core_no_controller() -> Machine {
    Machine::new(MachineConfig {
        cores: 4,
        controller: None,
        ..MachineConfig::single_core()
    })
}

/// Repeated stores to one line keep exactly one modified copy, however
/// many cores touch it: "at most a single copy of the line can be
/// marked modified at any time".
#[test]
fn at_most_one_modified_copy() {
    let mut m = four_core_no_controller();
    // Interleave stores to the same line from all four cores by
    // scripting one store per core; the controller is absent, so we run
    // the script once per core with manual re-activation via a fresh
    // machine… instead, exercise it through the migration machine on a
    // store-heavy stream and check the invariant statistically: every
    // L2-to-L2 forward found exactly one modified copy (the model scans
    // remote L2s and breaks at the first, which is the only one by
    // construction of the store broadcast).
    let line = Addr::new(0x400000);
    let mut s = Script::new(vec![Access::store(line); 16]);
    let n = s.len();
    m.run(&mut s, n);
    // The invariant is structural: stores broadcast a modified-bit
    // reset to every other L2 after setting their own.
    assert_eq!(m.stats().stores, 16);
    assert_eq!(m.stats().l2_misses, 1, "only the first store allocates");
}

/// A dirty line evicted from an L2 is written back to L3; clean
/// evictions are silent.
#[test]
fn only_dirty_evictions_write_back() {
    // 512 KB 4-way skewed L2 = 8192 frames. Fill it far past capacity
    // with clean loads: write-backs stay zero.
    let mut clean = four_core_no_controller();
    let loads: Vec<Access> = (0..20_000u64)
        .map(|i| Access::load(Addr::new(0x1000_0000 + i * 64)))
        .collect();
    let mut s = Script::new(loads);
    let n = s.len();
    clean.run(&mut s, n);
    assert_eq!(clean.stats().l3_writebacks, 0, "clean evictions wrote back");

    // The same sweep as stores: evictions carry the modified bit.
    let mut dirty = four_core_no_controller();
    let stores: Vec<Access> = (0..20_000u64)
        .map(|i| Access::store(Addr::new(0x1000_0000 + i * 64)))
        .collect();
    let mut s = Script::new(stores);
    let n = s.len();
    dirty.run(&mut s, n);
    assert!(
        dirty.stats().l3_writebacks > 10_000,
        "dirty sweep wrote back only {}",
        dirty.stats().l3_writebacks
    );
}

/// Store-then-load to the same line never reaches the L2 twice for the
/// load: the write-through DL1 does not allocate, but the L2 does.
#[test]
fn write_allocate_in_l2_serves_following_loads() {
    let mut m = four_core_no_controller();
    let line = Addr::new(0x2000_0000);
    let mut s = Script::new(vec![
        Access::store(line), // DL1 miss (no allocate), L2 allocate
        Access::load(line),  // DL1 miss again, but L2 hit
        Access::load(line),  // DL1 hit (load allocated it)
    ]);
    let n = s.len();
    m.run(&mut s, n);
    let st = m.stats();
    assert_eq!(st.l2_misses, 1, "only the store's allocation misses");
    assert_eq!(st.dl1_misses, 2);
}

/// Write-through traffic: every store reaches the L2 even when it hits
/// the DL1 ("write allocation in L2 may be triggered even upon DL1
/// hits").
#[test]
fn every_store_reaches_the_l2() {
    let mut m = four_core_no_controller();
    let line = Addr::new(0x3000_0000);
    let mut s = Script::new(vec![
        Access::load(line),  // allocate in DL1 and L2
        Access::store(line), // DL1 hit, still an L2 access
        Access::store(line),
        Access::store(line),
    ]);
    let n = s.len();
    m.run(&mut s, n);
    // 1 load L1-miss request + 3 store write-throughs.
    assert_eq!(m.stats().l2_accesses, 4);
}

/// A prefetch whose only up-to-date copy is modified in a remote L2
/// must be skipped: filling the clean L3 image would plant stale data
/// and shadow the L2-to-L2 forward the demand path owes the line.
#[test]
fn prefetch_skips_lines_modified_in_remote_l2s() {
    let mut m = Machine::new(MachineConfig {
        cores: 4,
        controller: None,
        prefetch: Some(PrefetchConfig { degree: 1 }),
        ..MachineConfig::single_core()
    });
    // Line L, and line L+1 — the prefetch candidate.
    let a = Addr::new(0x5000_0000);
    let b = Addr::new(0x5000_0040);
    // Core 0 dirties line B.
    let mut s0 = Script::new(vec![Access::store(b)]);
    m.run(&mut s0, 1);
    // Core 1 misses line A; the degree-1 prefetcher considers B, whose
    // only valid copy is modified in core 0's L2.
    m.activate(1);
    let mut s1 = Script::new(vec![Access::load(a)]);
    m.run(&mut s1, 1);
    assert_eq!(
        m.stats().prefetch_fills,
        0,
        "prefetched a line a remote L2 holds modified"
    );
    // The demand load of B on core 1 forwards the modified copy — it
    // must not hit a stale prefetched one.
    let forwards_before = m.stats().l2_to_l2_forwards;
    let mut s2 = Script::new(vec![Access::load(b)]);
    m.run(&mut s2, 1);
    assert_eq!(
        m.stats().l2_to_l2_forwards,
        forwards_before + 1,
        "demand load served from a stale prefetched copy"
    );
}

/// Prefetch candidates past the top of the line-address space are
/// dropped, not wrapped (and must not overflow-panic in debug builds).
#[test]
fn prefetch_at_address_space_top_drops_out_of_range_lines() {
    let mut m = Machine::new(MachineConfig {
        controller: None,
        prefetch: Some(PrefetchConfig { degree: 4 }),
        ..MachineConfig::single_core()
    });
    // Step the top line directly: every `line + i` candidate overflows.
    m.step(AccessKind::Load, LineAddr::new(u64::MAX), 1);
    assert_eq!(m.stats().prefetch_fills, 0);
    assert_eq!(m.stats().dl1_misses, 1);
    assert_eq!(m.stats().l2_misses, 1);
}

/// The update-bus accounting charges register traffic even for
/// access-free instruction stretches.
#[test]
fn bus_charges_follow_instructions() {
    let mut m = four_core_no_controller();
    let mut s = Script::new(vec![Access::load(Addr::new(0x100)); 1000]);
    let n = s.len();
    m.run(&mut s, n);
    let bus = m.stats().bus;
    // 1000 instructions at ~0.7 reg writes × 9 B ≈ 6.3 kB.
    assert!(
        (4_000..12_000).contains(&bus.reg_bytes),
        "reg bytes {}",
        bus.reg_bytes
    );
}
