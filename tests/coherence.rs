//! Coherence scenarios driven through the machine's public API with a
//! scripted access sequence and manual activity placement (no
//! controller): the migration-mode rules of §2.1, the eviction/
//! write-back paths, and the MESI/Dragon backends.

use execution_migration::cache::Indexing;
use execution_migration::machine::{
    CacheGeometry, Machine, MachineConfig, PrefetchConfig, Protocol,
};
use execution_migration::trace::workload::InstrBudget;
use execution_migration::trace::{Access, AccessKind, Addr, LineAddr, Workload};

/// A scripted workload: replays a fixed list of accesses, 1 instruction
/// each.
struct Script {
    accesses: Vec<Access>,
    at: usize,
    budget: InstrBudget,
}

impl Script {
    fn new(accesses: Vec<Access>) -> Self {
        Script {
            accesses,
            at: 0,
            budget: InstrBudget::per_access(1),
        }
    }

    fn len(&self) -> u64 {
        self.accesses.len() as u64
    }
}

impl Workload for Script {
    fn name(&self) -> &str {
        "script"
    }

    fn next_access(&mut self) -> Access {
        let a = self.accesses[self.at % self.accesses.len()];
        self.at += 1;
        self.budget.step();
        a
    }

    fn instructions(&self) -> u64 {
        self.budget.total()
    }
}

fn four_core_no_controller() -> Machine {
    Machine::new(MachineConfig {
        cores: 4,
        controller: None,
        ..MachineConfig::single_core()
    })
}

/// Repeated stores to one line keep exactly one modified copy, however
/// many cores touch it: "at most a single copy of the line can be
/// marked modified at any time".
#[test]
fn at_most_one_modified_copy() {
    let mut m = four_core_no_controller();
    // Interleave stores to the same line from all four cores by
    // scripting one store per core; the controller is absent, so we run
    // the script once per core with manual re-activation via a fresh
    // machine… instead, exercise it through the migration machine on a
    // store-heavy stream and check the invariant statistically: every
    // L2-to-L2 forward found exactly one modified copy (the model scans
    // remote L2s and breaks at the first, which is the only one by
    // construction of the store broadcast).
    let line = Addr::new(0x400000);
    let mut s = Script::new(vec![Access::store(line); 16]);
    let n = s.len();
    m.run(&mut s, n);
    // The invariant is structural: stores broadcast a modified-bit
    // reset to every other L2 after setting their own.
    assert_eq!(m.stats().stores, 16);
    assert_eq!(m.stats().l2_misses, 1, "only the first store allocates");
}

/// A dirty line evicted from an L2 is written back to L3; clean
/// evictions are silent.
#[test]
fn only_dirty_evictions_write_back() {
    // 512 KB 4-way skewed L2 = 8192 frames. Fill it far past capacity
    // with clean loads: write-backs stay zero.
    let mut clean = four_core_no_controller();
    let loads: Vec<Access> = (0..20_000u64)
        .map(|i| Access::load(Addr::new(0x1000_0000 + i * 64)))
        .collect();
    let mut s = Script::new(loads);
    let n = s.len();
    clean.run(&mut s, n);
    assert_eq!(clean.stats().l3_writebacks, 0, "clean evictions wrote back");

    // The same sweep as stores: evictions carry the modified bit.
    let mut dirty = four_core_no_controller();
    let stores: Vec<Access> = (0..20_000u64)
        .map(|i| Access::store(Addr::new(0x1000_0000 + i * 64)))
        .collect();
    let mut s = Script::new(stores);
    let n = s.len();
    dirty.run(&mut s, n);
    assert!(
        dirty.stats().l3_writebacks > 10_000,
        "dirty sweep wrote back only {}",
        dirty.stats().l3_writebacks
    );
}

/// Store-then-load to the same line never reaches the L2 twice for the
/// load: the write-through DL1 does not allocate, but the L2 does.
#[test]
fn write_allocate_in_l2_serves_following_loads() {
    let mut m = four_core_no_controller();
    let line = Addr::new(0x2000_0000);
    let mut s = Script::new(vec![
        Access::store(line), // DL1 miss (no allocate), L2 allocate
        Access::load(line),  // DL1 miss again, but L2 hit
        Access::load(line),  // DL1 hit (load allocated it)
    ]);
    let n = s.len();
    m.run(&mut s, n);
    let st = m.stats();
    assert_eq!(st.l2_misses, 1, "only the store's allocation misses");
    assert_eq!(st.dl1_misses, 2);
}

/// Write-through traffic: every store reaches the L2 even when it hits
/// the DL1 ("write allocation in L2 may be triggered even upon DL1
/// hits").
#[test]
fn every_store_reaches_the_l2() {
    let mut m = four_core_no_controller();
    let line = Addr::new(0x3000_0000);
    let mut s = Script::new(vec![
        Access::load(line),  // allocate in DL1 and L2
        Access::store(line), // DL1 hit, still an L2 access
        Access::store(line),
        Access::store(line),
    ]);
    let n = s.len();
    m.run(&mut s, n);
    // 1 load L1-miss request + 3 store write-throughs.
    assert_eq!(m.stats().l2_accesses, 4);
}

/// A prefetch whose only up-to-date copy is modified in a remote L2
/// must be skipped: filling the clean L3 image would plant stale data
/// and shadow the L2-to-L2 forward the demand path owes the line.
#[test]
fn prefetch_skips_lines_modified_in_remote_l2s() {
    let mut m = Machine::new(MachineConfig {
        cores: 4,
        controller: None,
        prefetch: Some(PrefetchConfig { degree: 1 }),
        ..MachineConfig::single_core()
    });
    // Line L, and line L+1 — the prefetch candidate.
    let a = Addr::new(0x5000_0000);
    let b = Addr::new(0x5000_0040);
    // Core 0 dirties line B.
    let mut s0 = Script::new(vec![Access::store(b)]);
    m.run(&mut s0, 1);
    // Core 1 misses line A; the degree-1 prefetcher considers B, whose
    // only valid copy is modified in core 0's L2.
    m.activate(1);
    let mut s1 = Script::new(vec![Access::load(a)]);
    m.run(&mut s1, 1);
    assert_eq!(
        m.stats().prefetch_fills,
        0,
        "prefetched a line a remote L2 holds modified"
    );
    // The demand load of B on core 1 forwards the modified copy — it
    // must not hit a stale prefetched one.
    let forwards_before = m.stats().l2_to_l2_forwards;
    let mut s2 = Script::new(vec![Access::load(b)]);
    m.run(&mut s2, 1);
    assert_eq!(
        m.stats().l2_to_l2_forwards,
        forwards_before + 1,
        "demand load served from a stale prefetched copy"
    );
}

/// Prefetch candidates past the top of the line-address space are
/// dropped, not wrapped (and must not overflow-panic in debug builds).
#[test]
fn prefetch_at_address_space_top_drops_out_of_range_lines() {
    let mut m = Machine::new(MachineConfig {
        controller: None,
        prefetch: Some(PrefetchConfig { degree: 4 }),
        ..MachineConfig::single_core()
    });
    // Step the top line directly: every `line + i` candidate overflows.
    m.step(AccessKind::Load, LineAddr::new(u64::MAX), 1);
    assert_eq!(m.stats().prefetch_fills, 0);
    assert_eq!(m.stats().dl1_misses, 1);
    assert_eq!(m.stats().l2_misses, 1);
}

/// A 1 KB 2-way *modulo*-indexed L2 (8 sets), so eviction victims are
/// hand-computable: lines `n` and `n + 8k` share a set.
fn tiny_modulo_machine(prefetch: Option<PrefetchConfig>) -> Machine {
    Machine::new(MachineConfig {
        controller: None,
        prefetch,
        l2: CacheGeometry {
            capacity_bytes: 1 << 10,
            ways: 2,
            indexing: Indexing::Modulo,
        },
        l3: Some(CacheGeometry {
            capacity_bytes: 32 << 10,
            ways: 4,
            indexing: Indexing::Skewed,
        }),
        ..MachineConfig::single_core()
    })
}

fn addr_of_line(line: u64) -> Addr {
    Addr::new(line * 64)
}

/// Regression (eviction audit): a *prefetch* fill that evicts a
/// modified L2 victim must install the victim into the finite L3, not
/// merely count a write-back — otherwise the only up-to-date copy of
/// the line is dropped and a later fetch resurrects stale data. (The
/// demand-fill path always installed; the prefetch path did not.)
#[test]
fn prefetch_victim_writeback_installs_into_l3() {
    let mut m = tiny_modulo_machine(Some(PrefetchConfig { degree: 1 }));
    // Dirty lines 0 and 8: both map to set 0 of the 8-set L2, filling
    // both ways (line 0 becomes LRU).
    let mut s = Script::new(vec![
        Access::store(addr_of_line(0)),
        Access::store(addr_of_line(8)),
        // Miss line 15 (set 7): the degree-1 prefetcher pulls line 16
        // into set 0, evicting the modified line 0.
        Access::load(addr_of_line(15)),
    ]);
    let n = s.len();
    m.run(&mut s, n);
    assert_eq!(m.stats().prefetch_fills, 1, "scenario must prefetch");
    assert_eq!(m.stats().l3_writebacks, 1, "modified victim writes back");
    let l3 = m.l3_cache().expect("finite L3 configured");
    // The demand fetch of line 0 already placed a *clean* copy in L3;
    // the write-back must upgrade it to modified, or the store to line
    // 0 is lost.
    assert_eq!(
        l3.modified(LineAddr::new(0)),
        Some(true),
        "prefetch victim was written back but never installed into L3"
    );
}

/// Regression (eviction audit): a *clean* L2 eviction is silent and
/// must never downgrade the L3's modified copy of the same line.
#[test]
fn clean_eviction_never_downgrades_modified_l3_copy() {
    let mut m = tiny_modulo_machine(None);
    let mut s = Script::new(vec![
        // Three dirty lines through set 0: storing 16 evicts the
        // modified line 0 into L3 (its only up-to-date copy).
        Access::store(addr_of_line(0)),
        Access::store(addr_of_line(8)),
        Access::store(addr_of_line(16)),
        // Re-fetch line 0 clean from L3 (evicts modified 8).
        Access::load(addr_of_line(0)),
        // Evict modified 16, leaving set 0 = {0 clean, 24}.
        Access::load(addr_of_line(24)),
        // Evict line 0 *clean*: silent, no L3 interaction.
        Access::load(addr_of_line(32)),
    ]);
    let n = s.len();
    m.run(&mut s, n);
    let l3 = m.l3_cache().expect("finite L3 configured");
    assert!(
        !m.l2_cache(0).contains(LineAddr::new(0)),
        "line 0 must have been evicted clean"
    );
    assert_eq!(
        l3.modified(LineAddr::new(0)),
        Some(true),
        "clean L2 eviction downgraded the modified L3 copy"
    );
    assert_eq!(
        m.stats().l3_writebacks,
        3,
        "exactly the three dirty evictions"
    );
}

/// MESI: a second core writing a shared line invalidates the other
/// copy; migration mode in the same scenario keeps it (store
/// broadcast refreshes instead).
#[test]
fn mesi_store_invalidates_where_migration_updates() {
    let run = |protocol: Protocol| {
        let mut m = Machine::new(MachineConfig {
            cores: 4,
            controller: None,
            protocol,
            ..MachineConfig::single_core()
        });
        let line = Addr::new(0x6000_0000);
        // Core 0 reads the line...
        let mut s0 = Script::new(vec![Access::load(line)]);
        m.run(&mut s0, 1);
        // ...then core 1 writes it.
        m.activate(1);
        let mut s1 = Script::new(vec![Access::store(line)]);
        m.run(&mut s1, 1);
        m
    };

    let mesi = run(Protocol::Mesi);
    assert!(
        !mesi.l2_cache(0).contains(LineAddr::new(0x6000_0000 / 64)),
        "MESI BusRdX must invalidate the remote copy"
    );
    assert_eq!(mesi.stats().invalidations, 1);
    assert!(mesi.stats().coherence_bus_bytes > 0);

    let migration = run(Protocol::MigrationMode);
    assert!(
        migration
            .l2_cache(0)
            .contains(LineAddr::new(0x6000_0000 / 64)),
        "migration mode refreshes the inactive copy instead"
    );
    assert_eq!(migration.stats().store_broadcast_updates, 1);
    assert_eq!(migration.stats().invalidations, 0);
    assert_eq!(migration.stats().coherence_bus_bytes, 0);
}

/// Dragon: the same scenario updates the remote copy in place (no
/// invalidation), pays update-word bus bytes, and leaves the writer
/// dirty-shared (Sm).
#[test]
fn dragon_store_updates_remote_copy_in_place() {
    let mut m = Machine::new(MachineConfig {
        cores: 4,
        controller: None,
        protocol: Protocol::Dragon,
        ..MachineConfig::single_core()
    });
    let line = Addr::new(0x7000_0000);
    let raw_line = LineAddr::new(0x7000_0000 / 64);
    let mut s0 = Script::new(vec![Access::load(line)]);
    m.run(&mut s0, 1);
    m.activate(1);
    let mut s1 = Script::new(vec![Access::store(line)]);
    m.run(&mut s1, 1);
    assert!(
        m.l2_cache(0).contains(raw_line),
        "Dragon BusUpd must not invalidate"
    );
    assert_eq!(
        m.l2_cache(0).modified(raw_line),
        Some(false),
        "remote is Sc"
    );
    assert_eq!(m.l2_cache(1).modified(raw_line), Some(true), "writer is Sm");
    assert_eq!(m.stats().coherence_updates, 1);
    assert_eq!(m.stats().invalidations, 0);
    assert!(m.stats().coherence_bus_bytes > 0);
}

/// The architectural update bus charges per retired broadcast, not per
/// mirroring core: under Dragon (as under every backend) its byte
/// totals are invariant in the core count. Only the *coherence*
/// counters may grow with more cores.
#[test]
fn dragon_update_bus_bytes_are_core_count_invariant() {
    // The same store-heavy stripe, replayed 4 times, spread round-robin
    // over however many cores exist — identical retired work on every
    // machine.
    let run = |cores: usize| {
        let mut m = Machine::new(MachineConfig {
            cores,
            controller: None,
            protocol: Protocol::Dragon,
            ..MachineConfig::single_core()
        });
        let mut now = 0u64;
        for replay in 0..4 {
            m.activate(replay % cores);
            for i in 0..1_000u64 {
                now += 1;
                m.step(AccessKind::Load, LineAddr::new(i % 64), now);
                now += 1;
                m.step(AccessKind::Store, LineAddr::new(i % 64), now);
            }
        }
        *m.stats()
    };
    let one = run(1);
    let two = run(2);
    let four = run(4);
    assert_eq!(one.stores, two.stores);
    assert_eq!(two.stores, four.stores);
    // Register/store/branch broadcasts are charged once per retired
    // event, however many cores mirror them.
    assert_eq!(one.bus.reg_bytes, four.bus.reg_bytes);
    assert_eq!(one.bus.store_bytes, four.bus.store_bytes);
    assert_eq!(one.bus.branch_bytes, four.bus.branch_bytes);
    assert_eq!(two.bus.reg_bytes, four.bus.reg_bytes);
    assert_eq!(two.bus.store_bytes, four.bus.store_bytes);
    assert_eq!(two.bus.branch_bytes, four.bus.branch_bytes);
    // The *coherence* traffic is what scales: a single core has no
    // sharers to update; more cores mean more Sc copies to refresh.
    assert_eq!(one.coherence_updates, 0);
    assert!(two.coherence_updates > 0);
    assert!(four.coherence_updates > two.coherence_updates);
}

/// The update-bus accounting charges register traffic even for
/// access-free instruction stretches.
#[test]
fn bus_charges_follow_instructions() {
    let mut m = four_core_no_controller();
    let mut s = Script::new(vec![Access::load(Addr::new(0x100)); 1000]);
    let n = s.len();
    m.run(&mut s, n);
    let bus = m.stats().bus;
    // 1000 instructions at ~0.7 reg writes × 9 B ≈ 6.3 kB.
    assert!(
        (4_000..12_000).contains(&bus.reg_bytes),
        "reg bytes {}",
        bus.reg_bytes
    );
}
