//! Shared helpers for the integration-test binaries.

/// Instruction budget for a scaled integration run.
///
/// Returns `fast` — the CI default, sized so the tier-1 suite stays
/// under ~2 minutes — unless the `EXECMIG_TEST_INSTR` environment
/// variable overrides it with an absolute dynamic-instruction count.
/// The `*_full` variants behind `#[ignore]` bypass this and run the
/// paper budgets directly (`cargo test -- --ignored`).
pub fn instr_budget(fast: u64) -> u64 {
    budget_from(std::env::var("EXECMIG_TEST_INSTR").ok(), fast)
}

fn budget_from(var: Option<String>, fast: u64) -> u64 {
    var.and_then(|v| v.parse().ok()).unwrap_or(fast)
}

#[cfg(test)]
mod tests {
    use super::budget_from;

    #[test]
    fn env_override_beats_fast_default() {
        assert_eq!(budget_from(Some("12345".to_string()), 99), 12345);
        assert_eq!(budget_from(Some("not a number".to_string()), 99), 99);
        assert_eq!(budget_from(None, 99), 99);
    }
}
