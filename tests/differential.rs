//! Differential-checking integration tests: the lockstep differ, the
//! fuzzer's repro artifacts, and the stress configurations, exercised
//! through the facade crate the way the `differ` binary uses them.

mod common;

use common::instr_budget;
use execution_migration::check::fuzz::{diverges, generate, stress_configs, FuzzConfig};
use execution_migration::check::{read_repro, write_repro, Lockstep, TraceStep};
use execution_migration::machine::MachineConfig;
use execution_migration::trace::suite;

/// The optimized machine and the naive reference agree, step for step
/// and in final cache contents, on real suite workloads.
#[test]
fn suite_workloads_run_divergence_free() {
    let budget = instr_budget(300_000);
    for name in ["mcf", "em3d", "art"] {
        let mut w = suite::by_name(name).unwrap();
        let mut lockstep = Lockstep::new(MachineConfig::four_core_migration());
        let report = lockstep
            .run_workload(&mut *w, budget)
            .or_else(|| lockstep.final_check());
        assert!(report.is_none(), "{name} diverged:\n{}", report.unwrap());
        assert!(lockstep.steps() > 0, "{name} produced no steps");
    }
}

/// Fuzzed streams agree on every stress configuration (the CI seeds).
#[test]
fn fuzzed_streams_run_divergence_free() {
    for seed in 1..=2 {
        let stream = generate(&FuzzConfig {
            seed,
            accesses: 8_000,
            ..FuzzConfig::default()
        });
        for (name, config) in stress_configs() {
            let report = diverges(&config, &stream);
            assert!(
                report.is_none(),
                "seed {seed} vs {name} diverged:\n{}",
                report.unwrap()
            );
        }
    }
}

/// A repro artifact survives a disk round-trip and replays to the same
/// verdict — the contract the `differ --replay` mode depends on.
#[test]
fn repro_artifacts_round_trip_through_disk() {
    let stream = generate(&FuzzConfig {
        seed: 5,
        accesses: 500,
        ..FuzzConfig::default()
    });
    let path =
        std::env::temp_dir().join(format!("execmig-differential-{}.emt", std::process::id()));
    let file = std::fs::File::create(&path).unwrap();
    write_repro(std::io::BufWriter::new(file), &stream).unwrap();
    let reread: Vec<TraceStep> =
        read_repro(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(stream, reread);
    // The replayed stream reaches the same verdict on every config.
    for (name, config) in stress_configs() {
        assert!(
            diverges(&config, &reread).is_none(),
            "replayed stream diverged on {name}"
        );
    }
}
