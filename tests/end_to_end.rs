//! Cross-crate integration tests: the full pipeline from workload
//! generation through cache simulation, the affinity controller, and
//! the machine model.

mod common;

use common::instr_budget;
use execution_migration::core::ControllerConfig;
use execution_migration::machine::{Machine, MachineConfig};
use execution_migration::trace::{suite, Workload};

/// The whole pipeline is deterministic: two identical runs produce
/// bit-identical statistics.
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let mut m = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name("mcf").unwrap();
        m.run(&mut *w, 2_000_000);
        let s = m.stats();
        (
            s.instructions,
            s.dl1_misses,
            s.l2_misses,
            s.migrations,
            s.l3_writebacks,
            s.l2_to_l2_forwards,
        )
    };
    assert_eq!(run(), run());
}

/// Machine-level and controller-level migration counts agree.
#[test]
fn machine_and_controller_agree() {
    let mut m = Machine::new(MachineConfig::four_core_migration());
    let mut w = suite::by_name("em3d").unwrap();
    m.run(&mut *w, instr_budget(3_000_000));
    let controller = m.controller().expect("migration machine has a controller");
    assert_eq!(m.stats().migrations, controller.stats().migrations);
    // Every controller request corresponds to a machine L1-miss request.
    assert_eq!(m.stats().l1_requests, controller.stats().requests);
}

/// Event-count sanity for every suite benchmark: the hierarchy can
/// only lose references on the way down.
#[test]
fn event_hierarchy_is_consistent() {
    for name in suite::names() {
        let mut m = Machine::new(MachineConfig::single_core());
        let mut w = suite::by_name(name).unwrap();
        m.run(&mut *w, instr_budget(1_000_000));
        let s = m.stats();
        assert!(s.accesses >= s.ifetches + s.loads + s.stores, "{name}");
        assert!(
            s.il1_misses + s.dl1_misses <= s.accesses,
            "{name}: more L1 misses than accesses"
        );
        assert!(
            s.l2_misses <= s.l2_accesses,
            "{name}: more L2 misses than L2 accesses"
        );
        assert!(
            s.l2_to_l2_forwards + s.l3_fetches == s.l2_misses,
            "{name}: every L2 miss is served by a forward or by L3"
        );
        assert_eq!(s.migrations, 0, "{name}: single core cannot migrate");
        assert_eq!(s.instructions, w.instructions(), "{name}");
    }
}

/// The single-core machine never forwards L2-to-L2 (there is no other
/// L2), and all inactive-core statistics stay zero.
#[test]
fn single_core_has_no_coherence_traffic() {
    let mut m = Machine::new(MachineConfig::single_core());
    let mut w = suite::by_name("bzip2").unwrap();
    m.run(&mut *w, 2_000_000);
    let s = m.stats();
    assert_eq!(s.l2_to_l2_forwards, 0);
    assert_eq!(s.store_broadcast_updates, 0);
}

/// Running the same L1-miss request stream through a standalone
/// controller and through the machine yields the same migration
/// pattern when L2 filtering is disabled (the machine's extra L2 state
/// only matters through the l2_miss flag).
#[test]
fn controller_standalone_matches_machine_without_l2_filter() {
    let config = ControllerConfig {
        l2_filter: false,
        ..ControllerConfig::paper_4core()
    };
    // Standalone: replay the machine's request stream.
    let machine_config = MachineConfig {
        controller: Some(config),
        ..MachineConfig::four_core_migration()
    };
    let mut m = Machine::new(machine_config);
    let mut w = suite::by_name("health").unwrap();
    m.run(&mut *w, 2_000_000);
    let machine_migrations = m.stats().migrations;

    // The standalone controller sees the same (filtered) request stream
    // only if L1 state matches; rebuild it through a fresh machine works
    // because the run is deterministic. Here we simply sanity-check the
    // counts are nontrivial and machine == controller.
    assert_eq!(
        machine_migrations,
        m.controller().unwrap().stats().migrations
    );
    assert!(m.stats().l1_requests > 0);
}

/// A migration-mode invariant from §2.1: at most one L2 holds a line
/// with the modified bit set. Exercised indirectly: forwards and
/// write-backs stay consistent over a store-heavy run.
#[test]
fn modified_forwards_do_not_exceed_writebacks() {
    let mut m = Machine::new(MachineConfig::four_core_migration());
    let mut w = suite::by_name("bzip2").unwrap();
    m.run(&mut *w, instr_budget(5_000_000));
    let s = m.stats();
    // Every forward also wrote back to L3 (§2.1: "the line is
    // simultaneously written back into L3").
    assert!(s.l3_writebacks >= s.l2_to_l2_forwards);
}

/// Instructions-per-event accessors reflect the raw counters.
#[test]
fn stats_accessors_are_consistent() {
    let mut m = Machine::new(MachineConfig::single_core());
    let mut w = suite::by_name("twolf").unwrap();
    m.run(&mut *w, 1_000_000);
    let s = m.stats();
    let expect = s.instructions as f64 / s.l2_misses as f64;
    assert!((s.instr_per_l2_miss() - expect).abs() < 1e-9);
}

/// The 2-core configuration works end to end.
#[test]
fn two_core_machine_runs() {
    use execution_migration::core::SplitWays;
    let config = MachineConfig {
        cores: 2,
        controller: Some(ControllerConfig {
            ways: SplitWays::Two,
            ..ControllerConfig::paper_4core()
        }),
        ..MachineConfig::single_core()
    };
    let mut m = Machine::new(config);
    let mut w = suite::by_name("art").unwrap();
    m.run(&mut *w, instr_budget(3_000_000));
    assert!(m.stats().l2_misses > 0);
    assert!(m.active_core() < 2);
}
