//! Golden determinism tests: exact event counts for fixed seeds and
//! budgets. These pin the whole stack — generators, caches, affinity
//! arithmetic, coherence — so any unintended behavioural change fails
//! loudly. If a change is *intended* (e.g. retuning a workload), update
//! the constants and note it in CHANGELOG.md.

use execution_migration::core::{Splitter2, SplitterConfig};
use execution_migration::machine::{Machine, MachineConfig, Protocol};
use execution_migration::trace::{suite, Workload};

/// Snapshot of one machine run.
fn run(name: &str, config: MachineConfig, instructions: u64) -> (u64, u64, u64, u64) {
    let mut m = Machine::new(config);
    let mut w = suite::by_name(name).unwrap();
    m.run(&mut *w, instructions);
    let s = m.stats();
    (s.dl1_misses, s.l2_misses, s.migrations, s.l3_writebacks)
}

#[test]
fn golden_art_baseline() {
    let (dl1, l2, mig, wb) = run("art", MachineConfig::single_core(), 2_000_000);
    assert_eq!((dl1, l2, mig), (227453, 199751, 0));
    assert!(wb > 0);
}

#[test]
fn golden_art_migration() {
    let (dl1, l2, mig, _) = run("art", MachineConfig::four_core_migration(), 2_000_000);
    // The DL1 side is identical to the baseline by construction (L1
    // mirroring): same stream, same (shared) L1.
    assert_eq!(dl1, 227453);
    // The L2 and migration counts are pinned to the exact algorithm.
    assert_eq!((l2, mig), (143089, 31));
}

#[test]
fn golden_mcf_migration() {
    let (_, l2, mig, _) = run("mcf", MachineConfig::four_core_migration(), 2_000_000);
    assert_eq!((l2, mig), (476485, 584));
}

#[test]
fn golden_art_mesi() {
    let config = MachineConfig {
        protocol: Protocol::Mesi,
        ..MachineConfig::four_core_migration()
    };
    let mut m = Machine::new(config);
    let mut w = suite::by_name("art").unwrap();
    m.run(&mut *w, 2_000_000);
    let s = m.stats();
    // The L1 side never depends on the L2 protocol (mirrored L1s).
    assert_eq!(s.dl1_misses, 227453);
    // Invalidations kill remote copies, so the miss stream (and hence
    // the controller's decisions) differs from migration mode.
    assert_eq!(
        (
            s.l2_misses,
            s.migrations,
            s.invalidations,
            s.coherence_updates
        ),
        (136736, 29, 19232, 0)
    );
}

#[test]
fn golden_art_dragon() {
    let config = MachineConfig {
        protocol: Protocol::Dragon,
        ..MachineConfig::four_core_migration()
    };
    let mut m = Machine::new(config);
    let mut w = suite::by_name("art").unwrap();
    m.run(&mut *w, 2_000_000);
    let s = m.stats();
    assert_eq!(s.dl1_misses, 227453);
    // Dragon updates copies in place, exactly like migration mode's
    // store broadcast — so the hit/miss stream (and migrations) match
    // `golden_art_migration`; only the accounting differs.
    assert_eq!(
        (
            s.l2_misses,
            s.migrations,
            s.invalidations,
            s.coherence_updates
        ),
        (143089, 31, 0, 86583)
    );
}

#[test]
fn golden_splitter_circular() {
    let mut s = Splitter2::new(SplitterConfig {
        r_window: 100,
        ..SplitterConfig::default()
    });
    for t in 0..500_000u64 {
        s.on_reference(t % 4000);
    }
    let st = s.stats();
    assert_eq!(st.references, 500_000);
    assert_eq!(st.transitions, 249);
}

#[test]
fn golden_workload_streams() {
    // First data-access line of each benchmark is stable.
    let expected: &[(&str, u64)] = &[
        ("gzip", 0x2_0002_dec0),
        ("art", 0x2_0000_0000),
        ("mcf", 0x2_0015_8fc0),
        ("bh", 0x2_0002_2c80),
    ];
    for &(name, addr) in expected {
        let mut w = suite::by_name(name).unwrap();
        let first_data = loop {
            let a = w.next_access();
            if a.kind.is_data() {
                break a.addr.raw();
            }
        };
        assert_eq!(first_data, addr, "{name} first data access moved");
    }
}
