//! Integration tests asserting the paper's headline claims reproduce,
//! at reduced (CI-friendly) instruction budgets.

use execution_migration::experiments::{fig3, fig45, table2};
use execution_migration::machine::perf::break_even_pmig;
use execution_migration::machine::{Machine, MachineConfig};
use execution_migration::trace::suite;

/// §3.3 / Figure 3: Circular(4000) with |R| = 100 reaches the optimal
/// split — one transition every 2000 references — and a balanced sign
/// distribution.
#[test]
fn fig3_circular_reaches_optimal_split() {
    let result = fig3::run(fig3::Fig3Config::circular());
    let last = result.snapshots.last().unwrap();
    assert!((0.4..=0.6).contains(&last.positive_fraction));
    assert!(
        (last.transition_rate - 0.0005).abs() < 0.0005,
        "rate {}",
        last.transition_rate
    );
}

/// §3.3 / Figure 3: HalfRandom(300) transitions about once per burst.
#[test]
fn fig3_half_random_transitions_once_per_burst() {
    let result = fig3::run(fig3::Fig3Config::half_random());
    let last = result.snapshots.last().unwrap();
    assert!(
        (last.transition_rate - 1.0 / 300.0).abs() < 1.5 / 300.0,
        "rate {}",
        last.transition_rate
    );
}

/// §4.1 / Figures 4-5: the splittable/unsplittable classification —
/// art, ammp, em3d, health show a clear p1-p4 gap; gzip, vpr do not.
#[test]
fn fig45_splittability_classification() {
    let config = fig45::Fig45Config::paper(8_000_000);
    for name in ["art", "ammp", "em3d"] {
        let r = fig45::run_benchmark(name, &config);
        assert!(r.split_gain > 0.05, "{name} gain {}", r.split_gain);
    }
    for name in ["gzip", "vpr"] {
        let r = fig45::run_benchmark(name, &config);
        assert!(r.split_gain.abs() < 0.08, "{name} gain {}", r.split_gain);
    }
}

/// §4.1: the transition frequency remains low in all cases — the
/// paper's worst is 1.34 % (vpr).
#[test]
fn fig45_transition_frequency_remains_low() {
    let config = fig45::Fig45Config::paper(4_000_000);
    for name in ["gzip", "vpr", "mcf", "art", "bh"] {
        let r = fig45::run_benchmark(name, &config);
        assert!(
            r.transition_rate < 0.05,
            "{name}: transition rate {}",
            r.transition_rate
        );
    }
}

/// §4.2 / Table 2: the strong improvers improve and the degraders
/// degrade (moderate budget; the full sweep is in the table2 binary).
#[test]
fn table2_headline_rows() {
    let improver = table2::run_benchmark("art", 20_000_000);
    assert!(improver.ratio < 0.3, "art ratio {}", improver.ratio);
    let degrader = table2::run_benchmark("bh", 30_000_000);
    assert!(degrader.ratio > 1.1, "bh ratio {}", degrader.ratio);
    let neutral = table2::run_benchmark("mst", 10_000_000);
    assert!(
        (0.95..=1.05).contains(&neutral.ratio),
        "mst ratio {}",
        neutral.ratio
    );
}

/// §4.2: "In all cases, the frequency of migrations is kept under
/// control" — no benchmark migrates more often than once per ~500
/// instructions.
#[test]
fn table2_migration_frequency_under_control() {
    for name in ["art", "em3d", "gzip", "swim"] {
        let r = table2::run_benchmark(name, 10_000_000);
        assert!(
            r.migration_ipe > 500.0,
            "{name}: migration every {} instructions",
            r.migration_ipe
        );
    }
}

/// §4.2's mcf argument: migration removes many L2 misses per migration,
/// so a positive break-even P_mig exists.
#[test]
fn break_even_pmig_positive_for_improvers() {
    for name in ["art", "health"] {
        let mut baseline = Machine::new(MachineConfig::single_core());
        let mut w = suite::by_name(name).unwrap();
        baseline.run(&mut *w, 15_000_000);
        let mut migration = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name(name).unwrap();
        migration.run(&mut *w, 15_000_000);
        let be = break_even_pmig(baseline.stats(), migration.stats())
            .unwrap_or_else(|| panic!("{name} made no migrations"));
        assert!(be > 5.0, "{name}: break-even P_mig {be}");
    }
}

/// The suite metadata's expected outcomes stay in sync with what the
/// simulator actually produces for a representative subset.
#[test]
fn suite_outcomes_match_simulation() {
    use execution_migration::trace::suite::PaperOutcome;
    for (name, budget) in [("em3d", 20_000_000u64), ("vpr", 30_000_000)] {
        let info = suite::info(name).unwrap();
        let r = table2::run_benchmark(name, budget);
        match info.paper_outcome {
            PaperOutcome::Improves => {
                assert!(r.ratio < 0.9, "{name} ratio {}", r.ratio)
            }
            PaperOutcome::Neutral => {
                assert!((0.9..=1.05).contains(&r.ratio), "{name} ratio {}", r.ratio)
            }
            PaperOutcome::Degrades => {
                assert!(r.ratio > 1.02, "{name} ratio {}", r.ratio)
            }
        }
    }
}
