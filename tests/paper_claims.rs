//! Integration tests asserting the paper's headline claims reproduce,
//! at reduced (CI-friendly) instruction budgets.
//!
//! Each budget-heavy claim comes in two forms: the default test runs a
//! scaled-down budget (overridable via the `EXECMIG_TEST_INSTR`
//! environment variable, see `common::instr_budget`) so the tier-1
//! suite stays fast, and a `*_full` twin behind `#[ignore]` replays the
//! original paper budget (`cargo test --test paper_claims -- --ignored`).

mod common;

use common::instr_budget;
use execution_migration::experiments::{fig3, fig45, table2};
use execution_migration::machine::perf::break_even_pmig;
use execution_migration::machine::{Machine, MachineConfig};
use execution_migration::trace::suite;

/// §3.3 / Figure 3: Circular(4000) with |R| = 100 reaches the optimal
/// split — one transition every 2000 references — and a balanced sign
/// distribution.
#[test]
fn fig3_circular_reaches_optimal_split() {
    let result = fig3::run(fig3::Fig3Config::circular());
    let last = result.snapshots.last().unwrap();
    assert!((0.4..=0.6).contains(&last.positive_fraction));
    assert!(
        (last.transition_rate - 0.0005).abs() < 0.0005,
        "rate {}",
        last.transition_rate
    );
}

/// §3.3 / Figure 3: HalfRandom(300) transitions about once per burst.
#[test]
fn fig3_half_random_transitions_once_per_burst() {
    let result = fig3::run(fig3::Fig3Config::half_random());
    let last = result.snapshots.last().unwrap();
    assert!(
        (last.transition_rate - 1.0 / 300.0).abs() < 1.5 / 300.0,
        "rate {}",
        last.transition_rate
    );
}

/// §4.1 / Figures 4-5: the splittable/unsplittable classification —
/// art, ammp, em3d show a clear p1-p4 gap; gzip, vpr do not.
fn check_fig45_splittability(budget: u64, slow_budget: u64) {
    let config = fig45::Fig45Config::paper(budget);
    let slow_config = fig45::Fig45Config::paper(slow_budget);
    for name in ["art", "ammp", "em3d"] {
        // ammp and em3d warm their working sets slowly: their split
        // gains only clear the threshold at roughly twice art's budget.
        let config = if name == "art" { &config } else { &slow_config };
        let r = fig45::run_benchmark(name, config);
        assert!(r.split_gain > 0.05, "{name} gain {}", r.split_gain);
    }
    for name in ["gzip", "vpr"] {
        let r = fig45::run_benchmark(name, &config);
        assert!(r.split_gain.abs() < 0.08, "{name} gain {}", r.split_gain);
    }
}

#[test]
fn fig45_splittability_classification() {
    let budget = instr_budget(3_000_000);
    check_fig45_splittability(budget, budget * 2);
}

#[test]
#[ignore = "paper budget (8M instructions x 5 benchmarks); run with --ignored"]
fn fig45_splittability_classification_full() {
    check_fig45_splittability(8_000_000, 8_000_000);
}

/// §4.1: the transition frequency remains low in all cases — the
/// paper's worst is 1.34 % (vpr).
fn check_fig45_transition_frequency(budget: u64) {
    let config = fig45::Fig45Config::paper(budget);
    for name in ["gzip", "vpr", "mcf", "art", "bh"] {
        let r = fig45::run_benchmark(name, &config);
        assert!(
            r.transition_rate < 0.05,
            "{name}: transition rate {}",
            r.transition_rate
        );
    }
}

#[test]
fn fig45_transition_frequency_remains_low() {
    check_fig45_transition_frequency(instr_budget(2_000_000));
}

#[test]
#[ignore = "paper budget (4M instructions x 5 benchmarks); run with --ignored"]
fn fig45_transition_frequency_remains_low_full() {
    check_fig45_transition_frequency(4_000_000);
}

/// §4.2 / Table 2: the strong improvers improve and the degraders
/// degrade (moderate budget; the full sweep is in the table2 binary).
fn check_table2_headline_rows(scale: u64) {
    let improver = table2::run_benchmark("art", 20_000_000 / scale);
    assert!(improver.ratio < 0.3, "art ratio {}", improver.ratio);
    let degrader = table2::run_benchmark("bh", 30_000_000 / scale);
    assert!(degrader.ratio > 1.1, "bh ratio {}", degrader.ratio);
    let neutral = table2::run_benchmark("mst", 10_000_000 / scale);
    assert!(
        (0.95..=1.05).contains(&neutral.ratio),
        "mst ratio {}",
        neutral.ratio
    );
}

#[test]
fn table2_headline_rows() {
    // `EXECMIG_TEST_INSTR` sets the budget of the largest row (art);
    // the others keep their paper proportions. art's migration-mode
    // miss collapse needs ~10M instructions to amortise the cold start.
    let art_budget = instr_budget(10_000_000);
    check_table2_headline_rows((20_000_000 / art_budget).max(1));
}

#[test]
#[ignore = "paper budget (60M instructions); run with --ignored"]
fn table2_headline_rows_full() {
    check_table2_headline_rows(1);
}

/// §4.2: "In all cases, the frequency of migrations is kept under
/// control" — no benchmark migrates more often than once per ~500
/// instructions.
fn check_table2_migration_frequency(budget: u64) {
    for name in ["art", "em3d", "gzip", "swim"] {
        let r = table2::run_benchmark(name, budget);
        assert!(
            r.migration_ipe > 500.0,
            "{name}: migration every {} instructions",
            r.migration_ipe
        );
    }
}

#[test]
fn table2_migration_frequency_under_control() {
    check_table2_migration_frequency(instr_budget(3_000_000));
}

#[test]
#[ignore = "paper budget (10M instructions x 4 benchmarks); run with --ignored"]
fn table2_migration_frequency_under_control_full() {
    check_table2_migration_frequency(10_000_000);
}

/// §4.2's mcf argument: migration removes many L2 misses per migration,
/// so a positive break-even P_mig exists.
fn check_break_even_pmig(budget: u64) {
    for name in ["art", "health"] {
        let mut baseline = Machine::new(MachineConfig::single_core());
        let mut w = suite::by_name(name).unwrap();
        baseline.run(&mut *w, budget);
        let mut migration = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name(name).unwrap();
        migration.run(&mut *w, budget);
        let be = break_even_pmig(baseline.stats(), migration.stats())
            .unwrap_or_else(|| panic!("{name} made no migrations"));
        assert!(be > 5.0, "{name}: break-even P_mig {be}");
    }
}

#[test]
fn break_even_pmig_positive_for_improvers() {
    check_break_even_pmig(instr_budget(5_000_000));
}

#[test]
#[ignore = "paper budget (15M instructions x 4 runs); run with --ignored"]
fn break_even_pmig_positive_for_improvers_full() {
    check_break_even_pmig(15_000_000);
}

/// The suite metadata's expected outcomes stay in sync with what the
/// simulator actually produces for a representative subset.
fn check_suite_outcomes(scale: u64) {
    use execution_migration::trace::suite::PaperOutcome;
    for (name, budget) in [("em3d", 20_000_000u64), ("vpr", 30_000_000)] {
        let info = suite::info(name).unwrap();
        let r = table2::run_benchmark(name, budget / scale);
        match info.paper_outcome {
            PaperOutcome::Improves => {
                assert!(r.ratio < 0.9, "{name} ratio {}", r.ratio)
            }
            PaperOutcome::Neutral => {
                assert!((0.9..=1.05).contains(&r.ratio), "{name} ratio {}", r.ratio)
            }
            PaperOutcome::Degrades => {
                assert!(r.ratio > 1.02, "{name} ratio {}", r.ratio)
            }
        }
    }
}

#[test]
fn suite_outcomes_match_simulation() {
    let em3d_budget = instr_budget(6_000_000);
    check_suite_outcomes((20_000_000 / em3d_budget).max(1));
}

#[test]
#[ignore = "paper budget (50M instructions); run with --ignored"]
fn suite_outcomes_match_simulation_full() {
    check_suite_outcomes(1);
}
