//! Determinism guard for the interval profiler and its exporters: two
//! identical runs must produce bit-identical profile JSON and Chrome
//! traces. This is what makes `obs_diff` usable as a CI gate — any
//! nondeterminism in the sampler would show up as phantom drift.

use execution_migration::machine::{Machine, MachineConfig};
use execution_migration::obs::chrome::render_machine_trace;
use execution_migration::obs::{json, ProfileConfig, Profiler, ToJson, Tracer};
use execution_migration::trace::suite;

/// One em3d run with a small sampling period (so a short run still
/// crosses many interval boundaries and exercises decimation), exported
/// as (profile JSON, Chrome-trace JSON).
fn profiled_run() -> (String, String) {
    let mut m = Machine::new(MachineConfig::four_core_migration());
    m.set_profile_config(ProfileConfig {
        period: 16 << 10,
        capacity: 64,
    });
    let mut w = suite::by_name("em3d").expect("em3d in suite");
    m.run(&mut *w, 3_000_000);

    let profile = m.profiler().to_json().pretty();
    let mut records = Vec::new();
    let mut events = Vec::new();
    if Profiler::ACTIVE {
        records = m.profiler().records().to_vec();
    }
    if Tracer::ACTIVE {
        events = m.tracer().events().to_vec();
    }
    let trace =
        render_machine_trace(&records, &events, m.config().cores, m.stats().instructions).compact();
    (profile, trace)
}

#[test]
fn profile_export_is_bit_identical_across_runs() {
    let (profile_a, trace_a) = profiled_run();
    let (profile_b, trace_b) = profiled_run();
    assert_eq!(profile_a, profile_b, "profile JSON must be bit-identical");
    assert_eq!(trace_a, trace_b, "Chrome trace must be bit-identical");

    // Both artefacts are well-formed JSON in either feature mode.
    let profile = json::parse(&profile_a).expect("profile parses");
    let trace = json::parse(&trace_a).expect("trace parses");
    let records = match profile.get("records") {
        Some(execution_migration::obs::Json::Arr(r)) => r.len(),
        other => panic!("records missing: {other:?}"),
    };
    assert!(trace.get("traceEvents").is_some());
    if Profiler::ACTIVE {
        // 3M instructions at a 16k period, decimated into ≤64 records.
        assert!((2..=64).contains(&records), "{records} records");
        assert!(
            profile
                .get("decimations")
                .is_some_and(|d| *d != execution_migration::obs::Json::UInt(0)),
            "a 16k period over 3M instructions must decimate"
        );
    } else {
        assert_eq!(records, 0, "no records without the trace feature");
    }
}
