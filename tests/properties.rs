//! Property-based integration tests over the core data structures and
//! their cross-crate composition.

use execution_migration::cache::{Cache, CacheConfig, FullyAssocLru, LruStack, StackProfile};
use execution_migration::core::{
    sampler, AffinityTable, Sampler, SkewedAffinityCache, Splitter2, SplitterConfig,
    UnboundedAffinityTable,
};
use execution_migration::trace::LineAddr;
use proptest::prelude::*;

proptest! {
    /// Mattson's inclusion property: a reference hits a fully-assoc LRU
    /// cache of capacity C exactly when its stack depth is <= C.
    #[test]
    fn stack_depth_predicts_lru_hits(
        lines in proptest::collection::vec(0u64..200, 1..2000),
        capacity in 1usize..64,
    ) {
        let mut stack = LruStack::new();
        let mut cache = FullyAssocLru::new(capacity);
        for &line in &lines {
            let depth = stack.access(line);
            let hit = cache.access(line);
            let predicted = matches!(depth, Some(d) if d <= capacity as u64);
            prop_assert_eq!(hit, predicted, "line {} depth {:?}", line, depth);
        }
    }

    /// Stack depths are positive and bounded by the number of distinct
    /// lines seen so far.
    #[test]
    fn stack_depth_bounds(lines in proptest::collection::vec(0u64..500, 1..3000)) {
        let mut stack = LruStack::new();
        for &line in &lines {
            let before = stack.distinct_lines() as u64;
            if let Some(d) = stack.access(line) {
                prop_assert!(d >= 1);
                prop_assert!(d <= before, "depth {} > distinct {}", d, before);
            }
        }
    }

    /// A set-associative cache never exceeds its frame count, and a
    /// resident line is always found again immediately.
    #[test]
    fn cache_occupancy_bounded(
        lines in proptest::collection::vec(0u64..10_000, 1..2000),
        ways in 1u32..8,
    ) {
        let config = CacheConfig::set_associative(4 << 10, ways, 64);
        // Only valid geometries: sets must be a power of two.
        prop_assume!(config.sets().is_power_of_two() && config.sets() > 0);
        let mut c = Cache::new(config);
        for &l in &lines {
            let line = LineAddr::new(l);
            c.fill(line, false);
            prop_assert!(c.contains(line));
        }
        prop_assert!(c.occupancy() <= config.frames());
    }

    /// Skewed and modulo caches agree on hit/miss for streams that fit
    /// entirely (no evictions -> indexing is irrelevant).
    #[test]
    fn small_working_sets_always_hit(lines in proptest::collection::vec(0u64..16, 1..500)) {
        for config in [
            CacheConfig::set_associative(16 << 10, 4, 64),
            CacheConfig::skewed(16 << 10, 4, 64),
        ] {
            let mut c = Cache::new(config);
            for l in 0u64..16 {
                c.fill(LineAddr::new(l), false);
            }
            for &l in &lines {
                prop_assert!(c.lookup(LineAddr::new(l)), "{:?} lost line {}", config.indexing, l);
            }
        }
    }

    /// The carry-save mod-31 hash equals the remainder for all inputs.
    #[test]
    fn mod31_blocks_is_mod31(e in any::<u64>()) {
        prop_assert_eq!(sampler::mod31_blocks(e), e % 31);
    }

    /// Sampling thresholds partition lines consistently: a line sampled
    /// at threshold t is sampled at every t' > t.
    #[test]
    fn sampling_is_monotone(line in any::<u64>(), t in 1u64..31) {
        let low = Sampler::new(t);
        let high = Sampler::new(t + 1);
        if low.is_sampled(line) {
            prop_assert!(high.is_sampled(line));
        }
    }

    /// Affinity tables: what you write is what you read back (unbounded
    /// always, finite until evicted — here sized to fit).
    #[test]
    fn affinity_table_roundtrip(
        writes in proptest::collection::vec((0u64..64, -32768i64..=32767), 1..200),
    ) {
        let mut unbounded = UnboundedAffinityTable::new();
        let mut skewed = SkewedAffinityCache::new(256, 4);
        for &(line, v) in &writes {
            unbounded.write(line, v);
            skewed.write(line, v);
        }
        // Last write wins.
        let mut last = std::collections::HashMap::new();
        for &(line, v) in &writes {
            last.insert(line, v);
        }
        for (&line, &v) in &last {
            prop_assert_eq!(unbounded.peek(line), Some(v));
            prop_assert_eq!(skewed.peek(line), Some(v));
        }
    }

    /// The splitter's affinities always stay within the configured
    /// width, whatever the reference stream.
    #[test]
    fn splitter_affinities_within_width(
        refs in proptest::collection::vec(0u64..1000, 100..3000),
        bits in 4u32..17,
    ) {
        let mut s = Splitter2::new(SplitterConfig {
            affinity_bits: bits,
            r_window: 32,
            ..SplitterConfig::default()
        });
        for &e in &refs {
            s.on_reference(e);
        }
        let (lo, hi) = execution_migration::core::sat::range(bits);
        for e in 0..1000 {
            if let Some(a) = s.affinity_of(e) {
                prop_assert!((lo..=hi).contains(&a), "A_{} = {}", e, a);
            }
        }
    }

    /// Transition counts never exceed reference counts.
    #[test]
    fn transitions_bounded_by_references(refs in proptest::collection::vec(0u64..100, 1..2000)) {
        let mut s = Splitter2::new(SplitterConfig {
            r_window: 16,
            filter_bits: Some(12),
            ..SplitterConfig::default()
        });
        for &e in &refs {
            s.on_reference(e);
        }
        let st = s.stats();
        prop_assert!(st.transitions <= st.references);
        prop_assert_eq!(st.references, refs.len() as u64);
    }

    /// Stack profiles: `frac_deeper_than` is monotone non-increasing in
    /// x and bounded by [0, 1].
    #[test]
    fn profile_monotone(depths in proptest::collection::vec(
        proptest::option::of(1u64..100_000), 1..500,
    )) {
        let mut p = StackProfile::new(1 << 17);
        for d in &depths {
            p.record(*d);
        }
        let mut prev = 1.0f64;
        for x in (0..18).map(|i| 1u64 << i) {
            let f = p.frac_deeper_than(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    /// Machine invariants hold for arbitrary access sequences: every L2
    /// miss is served exactly once, DL1 misses never exceed data
    /// accesses, and the run is insensitive to core count when no
    /// controller is configured.
    #[test]
    fn machine_invariants_on_random_streams(
        ops in proptest::collection::vec((0u8..3, 0u64..4096), 10..800),
    ) {
        use execution_migration::machine::{Machine, MachineConfig};
        use execution_migration::trace::{AccessKind, LineAddr};
        let mut m = Machine::new(MachineConfig::single_core());
        for (i, &(kind, line)) in ops.iter().enumerate() {
            let kind = match kind {
                0 => AccessKind::IFetch,
                1 => AccessKind::Load,
                _ => AccessKind::Store,
            };
            m.step(kind, LineAddr::new(line), (i + 1) as u64);
        }
        let s = m.stats();
        prop_assert_eq!(s.accesses, ops.len() as u64);
        prop_assert_eq!(s.l2_to_l2_forwards + s.l3_fetches, s.l2_misses);
        prop_assert!(s.dl1_misses + s.il1_misses <= s.accesses);
        prop_assert!(s.l2_misses <= s.l2_accesses);
        prop_assert_eq!(s.migrations, 0);
    }

    /// The binary trace format round-trips arbitrary access sequences
    /// exactly, including pointer flags and instruction counts.
    #[test]
    fn trace_io_roundtrip(
        ops in proptest::collection::vec((0u8..4, any::<u64>(), 0u64..100), 1..300),
    ) {
        use execution_migration::trace::{Access, Addr, TraceReader, TraceWriter, Workload};
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        let mut instr = 0u64;
        let mut expected = Vec::new();
        for &(kind, addr, dinstr) in &ops {
            let access = match kind {
                0 => Access::ifetch(Addr::new(addr)),
                1 => Access::load(Addr::new(addr)),
                2 => Access::pointer_load(Addr::new(addr)),
                _ => Access::store(Addr::new(addr)),
            };
            instr += dinstr;
            writer.record(access, instr).unwrap();
            expected.push((access, instr));
        }
        let buf = writer.finish().unwrap();
        let mut reader = TraceReader::new(&buf[..]).unwrap();
        for (access, instr) in expected {
            prop_assert!(!reader.is_finished());
            prop_assert_eq!(reader.next_access(), access);
            prop_assert_eq!(reader.instructions(), instr);
        }
        prop_assert!(reader.is_finished());
    }

    /// The 8-way splitter tree designates subsets in range and counts
    /// transitions consistently for any stream.
    #[test]
    fn tree_subsets_in_range(refs in proptest::collection::vec(0u64..5000, 1..2000)) {
        use execution_migration::core::{SplitterTree, SplitterTreeConfig};
        let mut t = SplitterTree::new(SplitterTreeConfig::default());
        for &e in &refs {
            let subset = t.on_reference(e);
            prop_assert!(subset < t.subsets());
        }
        let st = t.stats();
        prop_assert_eq!(st.references, refs.len() as u64);
        prop_assert!(st.transitions <= st.references);
    }
}
