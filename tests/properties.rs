//! Property-style integration tests over the core data structures and
//! their cross-crate composition.
//!
//! Each test draws many random inputs from the workspace's own
//! deterministic [`Rng`] (seeded per test, so failures reproduce
//! exactly) and checks an invariant over all of them — the same
//! properties the seed repo expressed with proptest, without the
//! external dependency.

use execution_migration::cache::{Cache, CacheConfig, FullyAssocLru, LruStack, StackProfile};
use execution_migration::core::{
    sampler, AffinityTable, Sampler, SkewedAffinityCache, Splitter2, SplitterConfig,
    UnboundedAffinityTable,
};
use execution_migration::trace::{LineAddr, Rng};

/// Mattson's inclusion property: a reference hits a fully-assoc LRU
/// cache of capacity C exactly when its stack depth is <= C.
#[test]
fn stack_depth_predicts_lru_hits() {
    let mut rng = Rng::seed_from(0xa001);
    for round in 0..24 {
        let capacity = (1 + rng.below(63)) as usize;
        let n = 1 + rng.below(1999);
        let mut stack = LruStack::new();
        let mut cache = FullyAssocLru::new(capacity);
        for _ in 0..n {
            let line = rng.below(200);
            let depth = stack.access(line);
            let hit = cache.access(line);
            let predicted = matches!(depth, Some(d) if d <= capacity as u64);
            assert_eq!(hit, predicted, "round {round} line {line} depth {depth:?}");
        }
    }
}

/// Stack depths are positive and bounded by the number of distinct
/// lines seen so far.
#[test]
fn stack_depth_bounds() {
    let mut rng = Rng::seed_from(0xa002);
    for _ in 0..16 {
        let n = 1 + rng.below(2999);
        let mut stack = LruStack::new();
        for _ in 0..n {
            let line = rng.below(500);
            let before = stack.distinct_lines() as u64;
            if let Some(d) = stack.access(line) {
                assert!(d >= 1);
                assert!(d <= before, "depth {d} > distinct {before}");
            }
        }
    }
}

/// A set-associative cache never exceeds its frame count, and a
/// resident line is always found again immediately.
#[test]
fn cache_occupancy_bounded() {
    let mut rng = Rng::seed_from(0xa003);
    for _ in 0..12 {
        let ways = (1 + rng.below(7)) as u32;
        let config = CacheConfig::set_associative(4 << 10, ways, 64);
        if !config.sets().is_power_of_two() || config.sets() == 0 {
            continue;
        }
        let mut c = Cache::new(config);
        let n = 1 + rng.below(1999);
        for _ in 0..n {
            let line = LineAddr::new(rng.below(10_000));
            c.fill(line, false);
            assert!(c.contains(line));
        }
        assert!(c.occupancy() <= config.frames());
    }
}

/// Skewed and modulo caches agree on hit/miss for streams that fit
/// entirely (no evictions -> indexing is irrelevant).
#[test]
fn small_working_sets_always_hit() {
    let mut rng = Rng::seed_from(0xa004);
    for _ in 0..8 {
        for config in [
            CacheConfig::set_associative(16 << 10, 4, 64),
            CacheConfig::skewed(16 << 10, 4, 64),
        ] {
            let mut c = Cache::new(config);
            for l in 0u64..16 {
                c.fill(LineAddr::new(l), false);
            }
            let n = 1 + rng.below(499);
            for _ in 0..n {
                let l = rng.below(16);
                assert!(
                    c.lookup(LineAddr::new(l)),
                    "{:?} lost line {l}",
                    config.indexing
                );
            }
        }
    }
}

/// The carry-save mod-31 hash equals the remainder for all inputs.
#[test]
fn mod31_blocks_is_mod31() {
    let mut rng = Rng::seed_from(0xa005);
    for e in [0, 1, 30, 31, 32, u64::MAX, u64::MAX - 1] {
        assert_eq!(sampler::mod31_blocks(e), e % 31);
    }
    for _ in 0..10_000 {
        let e = rng.next_u64();
        assert_eq!(sampler::mod31_blocks(e), e % 31);
    }
}

/// Sampling thresholds partition lines consistently: a line sampled
/// at threshold t is sampled at every t' > t.
#[test]
fn sampling_is_monotone() {
    let mut rng = Rng::seed_from(0xa006);
    for _ in 0..10_000 {
        let line = rng.next_u64();
        let t = 1 + rng.below(30);
        let low = Sampler::new(t);
        let high = Sampler::new(t + 1);
        if low.is_sampled(line) {
            assert!(high.is_sampled(line), "line {line} dropped at t {t}+1");
        }
    }
}

/// Affinity tables: what you write is what you read back (unbounded
/// always, finite until evicted — here sized to fit).
#[test]
fn affinity_table_roundtrip() {
    let mut rng = Rng::seed_from(0xa007);
    for _ in 0..16 {
        let mut unbounded = UnboundedAffinityTable::new();
        let mut skewed = SkewedAffinityCache::new(256, 4);
        let n = 1 + rng.below(199);
        let mut last = std::collections::HashMap::new();
        for _ in 0..n {
            let line = rng.below(64);
            let v = rng.below(65_536) as i64 - 32_768;
            unbounded.write(line, v);
            skewed.write(line, v);
            last.insert(line, v);
        }
        for (&line, &v) in &last {
            assert_eq!(unbounded.peek(line), Some(v));
            assert_eq!(skewed.peek(line), Some(v));
        }
    }
}

/// The splitter's affinities always stay within the configured
/// width, whatever the reference stream.
#[test]
fn splitter_affinities_within_width() {
    let mut rng = Rng::seed_from(0xa008);
    for _ in 0..10 {
        let bits = (4 + rng.below(13)) as u32;
        let mut s = Splitter2::new(SplitterConfig {
            affinity_bits: bits,
            r_window: 32,
            ..SplitterConfig::default()
        });
        let n = 100 + rng.below(2900);
        for _ in 0..n {
            s.on_reference(rng.below(1000));
        }
        let (lo, hi) = execution_migration::core::sat::range(bits);
        for e in 0..1000 {
            if let Some(a) = s.affinity_of(e) {
                assert!(
                    (lo..=hi).contains(&a),
                    "A_{e} = {a} outside {bits}-bit range"
                );
            }
        }
    }
}

/// Transition counts never exceed reference counts.
#[test]
fn transitions_bounded_by_references() {
    let mut rng = Rng::seed_from(0xa009);
    for _ in 0..16 {
        let mut s = Splitter2::new(SplitterConfig {
            r_window: 16,
            filter_bits: Some(12),
            ..SplitterConfig::default()
        });
        let n = 1 + rng.below(1999);
        for _ in 0..n {
            s.on_reference(rng.below(100));
        }
        let st = s.stats();
        assert!(st.transitions <= st.references);
        assert_eq!(st.references, n);
    }
}

/// Stack profiles: `frac_deeper_than` is monotone non-increasing in
/// x and bounded by [0, 1].
#[test]
fn profile_monotone() {
    let mut rng = Rng::seed_from(0xa00a);
    for _ in 0..16 {
        let mut p = StackProfile::new(1 << 17);
        let n = 1 + rng.below(499);
        for _ in 0..n {
            let depth = if rng.below(4) == 0 {
                None
            } else {
                Some(1 + rng.below(99_999))
            };
            p.record(depth);
        }
        let mut prev = 1.0f64;
        for x in (0..18).map(|i| 1u64 << i) {
            let f = p.frac_deeper_than(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }
}

/// Machine invariants hold for arbitrary access sequences: every L2
/// miss is served exactly once, DL1 misses never exceed data
/// accesses, and no migrations occur without a controller.
#[test]
fn machine_invariants_on_random_streams() {
    use execution_migration::machine::{Machine, MachineConfig};
    use execution_migration::trace::AccessKind;
    let mut rng = Rng::seed_from(0xa00b);
    for _ in 0..12 {
        let mut m = Machine::new(MachineConfig::single_core());
        let n = 10 + rng.below(790);
        for i in 0..n {
            let kind = match rng.below(3) {
                0 => AccessKind::IFetch,
                1 => AccessKind::Load,
                _ => AccessKind::Store,
            };
            m.step(kind, LineAddr::new(rng.below(4096)), i + 1);
        }
        let s = m.stats();
        assert_eq!(s.accesses, n);
        assert_eq!(s.l2_to_l2_forwards + s.l3_fetches, s.l2_misses);
        assert!(s.dl1_misses + s.il1_misses <= s.accesses);
        assert!(s.l2_misses <= s.l2_accesses);
        assert_eq!(s.migrations, 0);
    }
}

/// The metrics registry mirrors `MachineStats` exactly, and registry
/// deltas over a run segment sum back to the aggregate counters —
/// whatever the access stream.
#[test]
fn metrics_deltas_sum_to_machine_stats() {
    use execution_migration::machine::{Machine, MachineConfig};
    use execution_migration::trace::AccessKind;
    let mut rng = Rng::seed_from(0xa00c);
    for _ in 0..8 {
        let mut m = Machine::new(MachineConfig::four_core_migration());
        let total = 400 + rng.below(800);
        let cut = total / 2;
        let step = |m: &mut Machine, i: u64, rng: &mut Rng| {
            let kind = match rng.below(3) {
                0 => AccessKind::IFetch,
                1 => AccessKind::Load,
                _ => AccessKind::Store,
            };
            m.step(kind, LineAddr::new(rng.below(4096)), i + 1);
        };
        for i in 0..cut {
            step(&mut m, i, &mut rng);
        }
        let snapshot = m.metrics().snapshot();
        let mid = *m.stats();
        for i in cut..total {
            step(&mut m, i, &mut rng);
        }
        let end = m.metrics();
        let delta = end.delta_since(&snapshot);
        let fin = m.stats();
        // Per-segment deltas reconstruct the aggregate counters.
        for (name, aggregate, segment) in [
            ("accesses", fin.accesses, fin.accesses - mid.accesses),
            (
                "l1_requests",
                fin.l1_requests,
                fin.l1_requests - mid.l1_requests,
            ),
            ("l2_misses", fin.l2_misses, fin.l2_misses - mid.l2_misses),
            (
                "migrations",
                fin.migrations,
                fin.migrations - mid.migrations,
            ),
            (
                "bus_l1_mirror_bytes",
                fin.bus.l1_mirror_bytes,
                fin.bus.l1_mirror_bytes - mid.bus.l1_mirror_bytes,
            ),
        ] {
            assert_eq!(end.counter_value(name), Some(aggregate), "{name} aggregate");
            assert_eq!(delta.counter_value(name), Some(segment), "{name} delta");
        }
        // Per-core occupancy tiles the instruction count.
        let occupancy: u64 = (0..4)
            .map(|c| end.counter_value(&format!("core{c}_instructions")).unwrap())
            .sum();
        assert_eq!(occupancy, fin.instructions);
    }
}

/// The binary trace format round-trips arbitrary access sequences
/// exactly, including pointer flags and instruction counts.
#[test]
fn trace_io_roundtrip() {
    use execution_migration::trace::{Access, Addr, TraceReader, TraceWriter, Workload};
    let mut rng = Rng::seed_from(0xa00d);
    for _ in 0..12 {
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        let mut instr = 0u64;
        let mut expected = Vec::new();
        let n = 1 + rng.below(299);
        for _ in 0..n {
            let addr = Addr::new(rng.next_u64());
            let access = match rng.below(4) {
                0 => Access::ifetch(addr),
                1 => Access::load(addr),
                2 => Access::pointer_load(addr),
                _ => Access::store(addr),
            };
            instr += rng.below(100);
            writer.record(access, instr).unwrap();
            expected.push((access, instr));
        }
        let buf = writer.finish().unwrap();
        let mut reader = TraceReader::new(&buf[..]).unwrap();
        for (access, instr) in expected {
            assert!(!reader.is_finished());
            assert_eq!(reader.next_access(), access);
            assert_eq!(reader.instructions(), instr);
        }
        assert!(reader.is_finished());
    }
}

/// The 8-way splitter tree designates subsets in range and counts
/// transitions consistently for any stream.
#[test]
fn tree_subsets_in_range() {
    use execution_migration::core::{SplitterTree, SplitterTreeConfig};
    let mut rng = Rng::seed_from(0xa00e);
    for _ in 0..12 {
        let mut t = SplitterTree::new(SplitterTreeConfig::default());
        let n = 1 + rng.below(1999);
        for _ in 0..n {
            let subset = t.on_reference(rng.below(5000));
            assert!(subset < t.subsets());
        }
        let st = t.stats();
        assert_eq!(st.references, n);
        assert!(st.transitions <= st.references);
    }
}
