//! Acceptance tests for the live-telemetry subsystem: a 4-worker sweep
//! served over real TCP must report per-worker progress while running,
//! the hub's self-accounted overhead must stay inside the
//! [`TelemetryBudget`] (2 % of run time), the wall-clock flight
//! recorder must serve live per-family span latencies on `/spans`
//! within its own [`WallBudget`], and — the hard promise —
//! `MachineStats` must be bit-identical with telemetry on and off.
//!
//! The HTTP client here is hand-rolled on `TcpStream`, matching the
//! repo's dependency-free discipline (and exercising the server with a
//! client that is *not* its own parser's sibling).

mod common;

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use execution_migration::experiments::runner::parallel_map_observed;
use execution_migration::experiments::telemetry::{Telemetry, BEAT_PERIOD_INSTR};
use execution_migration::machine::{Machine, MachineConfig};
use execution_migration::obs::wall::{self, families};
use execution_migration::obs::{json, Hub, HubConfig, Json, TelemetryBudget, Wall, WallBudget};
use execution_migration::trace::suite;

/// One blocking `GET path` against the telemetry server; returns
/// `(status, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set read timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The workers array of a parsed `/progress` document.
fn workers_of(doc: &Json) -> &[Json] {
    match doc.get("workers") {
        Some(Json::Arr(rows)) => rows,
        other => panic!("/progress carries a workers array, got {other:?}"),
    }
}

fn uint_field(row: &Json, name: &str) -> u64 {
    match row.get(name) {
        Some(Json::UInt(v)) => *v,
        other => panic!("field {name} is a uint, got {other:?}"),
    }
}

/// Telemetry must observe, never perturb: a machine run with mid-run
/// beats publishes the same counters — every registered metric, bit
/// for bit — as the same run without them. Uses the migration config
/// (the richest datapath: filter, A_R, coherence, bus) and two
/// workloads with very different migration behaviour.
#[test]
fn machine_stats_bit_identical_with_telemetry_on() {
    let budget = common::instr_budget(2_000_000);
    for name in ["art", "mcf"] {
        let mut plain = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name(name).expect("suite workload");
        plain.run(&mut *w, budget);

        let hub = Hub::new(HubConfig::with_workers(1));
        let worker = hub.worker(0).expect("slot 0");
        let mut observed = Machine::new(MachineConfig::four_core_migration());
        let mut w = suite::by_name(name).expect("suite workload");
        observed.run_observed(&mut *w, budget, &worker, 0, 0, BEAT_PERIOD_INSTR);

        // Registry equality covers every counter Machine registers —
        // and E007 guarantees that is every counter MachineStats has.
        assert_eq!(
            plain.metrics(),
            observed.metrics(),
            "telemetry perturbed the {name} run"
        );
        if Hub::ACTIVE {
            let snap = hub.snapshot();
            assert_eq!(snap.workers.len(), 1);
            assert_eq!(snap.workers[0].instructions, budget);
        }
    }
}

/// The acceptance sweep: four workers, telemetry served on an
/// ephemeral port, `/progress` polled over real TCP while the sweep
/// runs. Asserts live per-worker progress mid-run (trace builds),
/// well-formed responses in every build, and the 2 % overhead budget.
#[test]
fn four_worker_sweep_serves_live_progress() {
    let threads = 4;
    let telemetry = Telemetry::new(Some("127.0.0.1:0"), threads);
    assert!(telemetry.serving(), "ephemeral bind succeeds");
    let addr = telemetry.local_addr().expect("bound address");
    let budget = common::instr_budget(3_000_000);
    let names = ["art", "mcf", "gzip", "gcc", "bzip2", "art", "mcf", "gzip"];

    let started = Instant::now();
    let done = AtomicBool::new(false);
    let (rows, live_polls, live_span_polls) = std::thread::scope(|scope| {
        // Scrape /progress and /spans concurrently with the sweep and
        // count the polls that caught a worker (or a span family)
        // mid-flight.
        let scraper = scope.spawn(|| {
            let mut live_polls = 0u64;
            let mut live_span_polls = 0u64;
            while !done.load(Ordering::Acquire) {
                let (status, body) = http_get(addr, "/progress");
                assert_eq!(status, 200, "/progress answers while running");
                let doc = json::parse(&body).expect("/progress is valid JSON");
                let rows = workers_of(&doc);
                if Hub::ACTIVE {
                    assert_eq!(rows.len(), threads, "one row per worker slot");
                    let running = rows
                        .iter()
                        .filter(|r| {
                            r.get("state") == Some(&Json::Str("running".into()))
                                && uint_field(r, "instructions") > 0
                        })
                        .count();
                    if running > 0 {
                        live_polls += 1;
                    }
                }
                let (status, body) = http_get(addr, "/spans");
                assert_eq!(status, 200, "/spans answers while running");
                let doc = json::parse(&body).expect("/spans is valid JSON");
                if Wall::ACTIVE && uint_field(&doc, "total_spans") > 0 {
                    // Mid-run the recorder already serves per-family
                    // quantiles for completed spans.
                    let fams = match doc.get("families") {
                        Some(Json::Arr(rows)) => rows,
                        other => panic!("/spans carries a families array, got {other:?}"),
                    };
                    assert_eq!(fams.len(), families::ALL.len());
                    if fams.iter().any(|f| {
                        uint_field(f, "count") > 0
                            && uint_field(f, "p999_ns") >= uint_field(f, "p50_ns")
                    }) {
                        live_span_polls += 1;
                    }
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            (live_polls, live_span_polls)
        });

        let (rows, _report) = {
            // The sweep root span: worker task spans parent to it.
            let _sweep = wall::span(families::SWEEP);
            parallel_map_observed(names.to_vec(), threads, telemetry.obs(), |name, ctx| {
                let mut m = Machine::new(MachineConfig::four_core_migration());
                let mut w = suite::by_name(name).expect("suite workload");
                match &ctx {
                    Some(c) => m.run_observed(
                        &mut *w,
                        budget,
                        c.worker,
                        c.task,
                        c.tasks_done,
                        BEAT_PERIOD_INSTR,
                    ),
                    None => m.run(&mut *w, budget),
                }
                m.stats().l2_misses
            })
        };
        done.store(true, Ordering::Release);
        let (live_polls, live_span_polls) = scraper.join().expect("scraper thread");
        (rows, live_polls, live_span_polls)
    });
    let run_ns = started.elapsed().as_nanos() as u64;

    assert_eq!(rows.len(), names.len());
    assert!(rows.iter().all(|&misses| misses > 0));

    let hub = telemetry.hub().expect("serving implies a hub");
    if Hub::ACTIVE {
        assert!(
            live_polls > 0,
            "no /progress poll caught a running worker mid-task"
        );
        let snap = hub.snapshot();
        assert!(snap.all_done(), "every worker reported Done: {snap:?}");
        assert_eq!(snap.total_tasks_done(), names.len() as u64);
        assert_eq!(
            snap.total_instructions(),
            0,
            "Done beats reset per-task counters"
        );
        let overhead = hub.overhead();
        assert!(overhead.beats > 0, "the sweep published beats");
        let verdict = TelemetryBudget::default().verdict(&overhead, run_ns);
        assert!(
            verdict.within,
            "telemetry overhead {:.4} % exceeds the {:.0} % budget",
            verdict.fraction * 100.0,
            verdict.max_fraction * 100.0
        );
    }

    if Wall::ACTIVE {
        assert!(
            live_span_polls > 0,
            "no /spans poll caught a span family with live quantiles"
        );
        let recorder = telemetry.wall().expect("serving implies a wall");
        let snap = recorder.snapshot();
        for family in [families::SWEEP, families::TASK, families::RUN] {
            let stats = snap.family(family).expect("registered family");
            assert!(stats.count > 0, "{family} recorded no spans");
            assert!(stats.p50_ns <= stats.p99_ns && stats.p99_ns <= stats.p999_ns);
        }
        assert_eq!(
            snap.family(families::TASK).map(|f| f.count),
            Some(names.len() as u64),
            "one task span per sweep item"
        );
        let wall_verdict = WallBudget::default().verdict(&recorder.overhead(), run_ns);
        assert!(
            wall_verdict.within,
            "wall overhead {:.4} % exceeds the {:.0} % budget",
            wall_verdict.fraction * 100.0,
            wall_verdict.max_fraction * 100.0
        );
    }

    // The other endpoints answer well-formed in every build mode.
    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "no worker is stalled after the sweep");
    assert!(health.contains("\"status\""));
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("# TYPE execmig_hub_beats_total counter"));
    assert!(metrics.contains("# TYPE execmig_wall_spans_total counter"));
    let (status, spans) = http_get(addr, "/spans");
    assert_eq!(status, 200);
    assert!(spans.contains("\"families\"") && spans.contains("\"budget\""));
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);

    telemetry.finish();
}
